#include <gtest/gtest.h>

#include "test_topologies.hpp"
#include "traffic/traffic.hpp"

namespace nexit::traffic {
namespace {

using testing::figure1_pair;

TEST(TrafficMatrix, OneFlowPerPopPairPerDirection) {
  auto pair = figure1_pair();
  util::Rng rng(1);
  TrafficConfig cfg;
  auto tm = TrafficMatrix::build(pair, Direction::kAtoB, cfg, rng);
  EXPECT_EQ(tm.size(), pair.a().pop_count() * pair.b().pop_count());
  auto both = TrafficMatrix::build_bidirectional(pair, cfg, rng);
  EXPECT_EQ(both.size(), 2 * pair.a().pop_count() * pair.b().pop_count());
}

TEST(TrafficMatrix, FlowIdsMatchIndices) {
  auto pair = figure1_pair();
  util::Rng rng(1);
  auto tm = TrafficMatrix::build_bidirectional(pair, TrafficConfig{}, rng);
  for (std::size_t i = 0; i < tm.size(); ++i) {
    EXPECT_EQ(tm.flows()[i].id.value(), static_cast<std::int32_t>(i));
    EXPECT_EQ(&tm.flow(FlowId{static_cast<std::int32_t>(i)}), &tm.flows()[i]);
  }
}

TEST(TrafficMatrix, VolumeNormalisedPerDirection) {
  auto pair = figure1_pair();
  util::Rng rng(2);
  TrafficConfig cfg;
  cfg.total_volume_per_direction = 500.0;
  auto tm = TrafficMatrix::build(pair, Direction::kAtoB, cfg, rng);
  EXPECT_NEAR(tm.total_volume(), 500.0, 1e-9);
  auto both = TrafficMatrix::build_bidirectional(pair, cfg, rng);
  EXPECT_NEAR(both.total_volume(), 1000.0, 1e-9);
}

TEST(TrafficMatrix, DirectionsAreLabelled) {
  auto pair = figure1_pair();
  util::Rng rng(3);
  auto both = TrafficMatrix::build_bidirectional(pair, TrafficConfig{}, rng);
  std::size_t a2b = 0, b2a = 0;
  for (const auto& f : both.flows()) {
    (f.direction == Direction::kAtoB ? a2b : b2a)++;
    EXPECT_GT(f.size, 0.0);
  }
  EXPECT_EQ(a2b, 9u);
  EXPECT_EQ(b2a, 9u);
}

TEST(TrafficMatrix, IdenticalModelGivesEqualSizes) {
  auto pair = figure1_pair();
  util::Rng rng(4);
  TrafficConfig cfg;
  cfg.model = WorkloadModel::kIdentical;
  auto tm = TrafficMatrix::build(pair, Direction::kAtoB, cfg, rng);
  for (const auto& f : tm.flows())
    EXPECT_NEAR(f.size, tm.flows()[0].size, 1e-12);
}

TEST(TrafficMatrix, GravityModelSkewsTowardPopulousCities) {
  // Build a pair where one city is 10x more populous; gravity flows touching
  // it must be larger.
  const auto& db = geo::CityDb::builtin();
  // Find a big and a small city by population.
  std::size_t big = 0, small = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (db.at(i).population_millions > db.at(big).population_millions) big = i;
    if (db.at(i).population_millions < db.at(small).population_millions) small = i;
  }
  ASSERT_GT(db.at(big).population_millions, 5 * db.at(small).population_millions);

  auto mk = [&](std::int32_t asn) {
    std::vector<topology::Pop> pops{
        topology::Pop{topology::PopId{0}, big, db.at(big).name, db.at(big).coord,
                      db.at(big).population_millions},
        topology::Pop{topology::PopId{1}, small, db.at(small).name,
                      db.at(small).coord, db.at(small).population_millions}};
    graph::Graph g(2);
    g.add_edge(0, 1, 1.0, 100.0);
    return topology::IspTopology(topology::AsNumber{asn}, "G", std::move(pops),
                                 std::move(g));
  };
  auto pair_opt = topology::make_pair_if_peers(mk(1), mk(2), 2);
  ASSERT_TRUE(pair_opt.has_value());

  util::Rng rng(5);
  auto tm = TrafficMatrix::build(*pair_opt, Direction::kAtoB, TrafficConfig{}, rng);
  // flow 0: big->big, flow 3: small->small.
  EXPECT_GT(tm.flows()[0].size, tm.flows()[3].size * 10);
}

TEST(TrafficMatrix, UniformRandomDeterministicGivenSeed) {
  auto pair = figure1_pair();
  TrafficConfig cfg;
  cfg.model = WorkloadModel::kUniformRandom;
  util::Rng r1(99), r2(99);
  auto t1 = TrafficMatrix::build(pair, Direction::kAtoB, cfg, r1);
  auto t2 = TrafficMatrix::build(pair, Direction::kAtoB, cfg, r2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_DOUBLE_EQ(t1.flows()[i].size, t2.flows()[i].size);
}

TEST(SideHelpers, UpstreamDownstream) {
  EXPECT_EQ(upstream_side(Direction::kAtoB), 0);
  EXPECT_EQ(downstream_side(Direction::kAtoB), 1);
  EXPECT_EQ(upstream_side(Direction::kBtoA), 1);
  EXPECT_EQ(downstream_side(Direction::kBtoA), 0);
}

}  // namespace
}  // namespace nexit::traffic
