// Bit-identity guarantees of the incremental evaluation layer:
//  - IncrementalLoads equals a full compute_loads() rebuild after any
//    randomized sequence of moves / newly-counted flows,
//  - every oracle's evaluate_incremental() equals a fresh full evaluate()
//    after randomized accepted-move + settle sequences,
//  - NegotiationEngine outcomes are identical with incremental evaluation
//    on and off (and pass the always-on cross-check),
//  - the engine cross-check actually catches a lying oracle,
//  - the bandwidth experiment is bit-identical across --threads values and
//    across the incremental knob.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "capacity/capacity.hpp"
#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "routing/incremental_loads.hpp"
#include "sim/bandwidth_experiment.hpp"
#include "sim/pair_universe.hpp"
#include "util/rng.hpp"

namespace nexit {
namespace {

topology::IspPair generated_pair(std::uint64_t seed, std::size_t pops) {
  sim::UniverseConfig u;
  u.isp_count = 24;
  u.seed = seed;
  u.generator.min_pops = pops;
  u.generator.max_pops = pops;
  u.max_pairs = 4;
  auto pairs = sim::build_pair_universe(u, 3);
  if (pairs.empty()) throw std::runtime_error("no pair generated");
  return pairs.front();
}

bool same_loads_bits(const routing::LoadMap& a, const routing::LoadMap& b) {
  for (int s = 0; s < 2; ++s) {
    const auto& x = a.per_side[static_cast<std::size_t>(s)];
    const auto& y = b.per_side[static_cast<std::size_t>(s)];
    if (x.size() != y.size()) return false;
    if (!x.empty() &&
        std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

bool same_evaluation_bits(const core::Evaluation& a, const core::Evaluation& b) {
  if (a.true_value.size() != b.true_value.size()) return false;
  for (std::size_t i = 0; i < a.true_value.size(); ++i) {
    if (a.true_value[i].size() != b.true_value[i].size()) return false;
    if (!a.true_value[i].empty() &&
        std::memcmp(a.true_value[i].data(), b.true_value[i].data(),
                    a.true_value[i].size() * sizeof(double)) != 0)
      return false;
  }
  if (a.classes.flows.size() != b.classes.flows.size()) return false;
  for (std::size_t i = 0; i < a.classes.flows.size(); ++i) {
    if (a.classes.flows[i].flow != b.classes.flows[i].flow ||
        a.classes.flows[i].pref_of_candidate !=
            b.classes.flows[i].pref_of_candidate)
      return false;
  }
  return true;
}

/// Scenario shared by the oracle properties: a generated pair, one-direction
/// traffic, capacities derived from the pre-failure loads, and the failure
/// negotiation problem for failed interconnection 0.
struct Scenario {
  topology::IspPair pair;
  routing::PairRouting routing{pair};
  traffic::TrafficMatrix tm;
  routing::LoadMap caps;
  core::NegotiationProblem problem;

  explicit Scenario(std::uint64_t seed, std::size_t pops = 10)
      : pair(generated_pair(seed, pops)),
        tm(make_traffic(pair, seed)),
        caps(make_caps(routing, tm)),
        problem(make_problem(routing, tm)) {}

  /// First failure with a non-empty negotiable set (some links carry none).
  static core::NegotiationProblem make_problem(
      const routing::PairRouting& r, const traffic::TrafficMatrix& tm) {
    for (std::size_t failed = 0; failed < r.pair().interconnection_count();
         ++failed) {
      core::NegotiationProblem p =
          core::make_failure_problem(r, tm.flows(), failed);
      if (!p.negotiable.empty()) return p;
    }
    throw std::runtime_error("no usable failure scenario");
  }

  static traffic::TrafficMatrix make_traffic(const topology::IspPair& p,
                                             std::uint64_t seed) {
    util::Rng rng(seed ^ 0x7e57u);
    return traffic::TrafficMatrix::build(p, traffic::Direction::kAtoB,
                                         traffic::TrafficConfig{}, rng);
  }
  static routing::LoadMap make_caps(const routing::PairRouting& r,
                                    const traffic::TrafficMatrix& tm) {
    std::vector<std::size_t> all_ix(r.pair().interconnection_count());
    for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;
    const routing::LoadMap baseline = routing::compute_loads(
        r, tm.flows(), routing::assign_early_exit(r, tm.flows(), all_ix));
    return capacity::assign_capacities(baseline, capacity::CapacityConfig{});
  }
};

TEST(IncrementalLoads, RandomMovesStayBitIdenticalToFullRebuild) {
  Scenario sc(17);
  const auto& flows = sc.tm.flows();
  routing::Assignment assignment = sc.problem.default_assignment;
  routing::IncrementalLoads inc(sc.routing, flows);
  inc.rebuild(assignment, nullptr);

  util::Rng rng(99);
  const std::size_t n_ix = sc.pair.interconnection_count();
  for (int step = 0; step < 300; ++step) {
    const std::size_t f =
        static_cast<std::size_t>(rng.next_u64()) % flows.size();
    const std::size_t to = static_cast<std::size_t>(rng.next_u64()) % n_ix;
    assignment.ix_of_flow[f] = to;
    inc.move_flow(f, to);
    ASSERT_TRUE(same_loads_bits(
        inc.loads(), routing::compute_loads(sc.routing, flows, assignment)))
        << "diverged at step " << step;
  }
}

TEST(IncrementalLoads, CountedMaskAndCountFlow) {
  Scenario sc(23);
  const auto& flows = sc.tm.flows();
  routing::Assignment assignment = sc.problem.default_assignment;

  // Start with only even-indexed flows counted.
  std::vector<char> counted(flows.size(), 0);
  for (std::size_t i = 0; i < flows.size(); i += 2) counted[i] = 1;
  routing::IncrementalLoads inc(sc.routing, flows);
  inc.rebuild(assignment, &counted);

  const auto reference = [&]() {
    routing::LoadMap m = routing::LoadMap::zeros(sc.pair);
    for (std::size_t i = 0; i < flows.size(); ++i)
      if (counted[i])
        routing::add_flow_load(m, sc.routing, flows[i],
                               assignment.ix_of_flow[i], 1.0);
    return m;
  };
  ASSERT_TRUE(same_loads_bits(inc.loads(), reference()));

  // Uncounted flows move silently, then start counting at their position.
  util::Rng rng(5);
  const std::size_t n_ix = sc.pair.interconnection_count();
  for (int step = 0; step < 100; ++step) {
    const std::size_t f =
        static_cast<std::size_t>(rng.next_u64()) % flows.size();
    if (rng.next_bool()) {
      const std::size_t to = static_cast<std::size_t>(rng.next_u64()) % n_ix;
      assignment.ix_of_flow[f] = to;
      inc.move_flow(f, to);
    } else if (!counted[f]) {
      counted[f] = 1;
      inc.count_flow(f);
    }
    ASSERT_TRUE(same_loads_bits(inc.loads(), reference()))
        << "diverged at step " << step;
  }
}

TEST(IncrementalLoads, TouchedLinksCoverEveryChange) {
  Scenario sc(31);
  const auto& flows = sc.tm.flows();
  routing::IncrementalLoads inc(sc.routing, flows);
  inc.rebuild(sc.problem.default_assignment, nullptr);
  (void)inc.loads();
  routing::LoadMap before = inc.loads();
  ASSERT_TRUE(inc.take_touched()[0].empty());

  inc.move_flow(0, sc.problem.candidates[1]);
  inc.move_flow(1, sc.problem.candidates[0]);
  const routing::LoadMap after = inc.loads();
  const auto touched = inc.take_touched();
  for (int s = 0; s < 2; ++s) {
    std::vector<char> is_touched(before.per_side[s].size(), 0);
    for (graph::EdgeIndex e : touched[static_cast<std::size_t>(s)])
      is_touched[static_cast<std::size_t>(e)] = 1;
    for (std::size_t e = 0; e < before.per_side[s].size(); ++e) {
      if (before.per_side[s][e] != after.per_side[s][e]) {
        EXPECT_TRUE(is_touched[e]) << "side " << s << " edge " << e;
      }
    }
  }
}

enum class OracleKind { kBandwidthTentative, kBandwidthExcluded, kPiecewise,
                        kDistance };

std::unique_ptr<core::PreferenceOracle> make_oracle(OracleKind kind, int side,
                                                    const routing::LoadMap& caps) {
  const core::PreferenceConfig pc;
  switch (kind) {
    case OracleKind::kBandwidthTentative:
      return std::make_unique<core::BandwidthOracle>(
          side, pc, caps, core::OpenFlowModel::kAtTentative);
    case OracleKind::kBandwidthExcluded:
      return std::make_unique<core::BandwidthOracle>(
          side, pc, caps, core::OpenFlowModel::kExcluded);
    case OracleKind::kPiecewise:
      return std::make_unique<core::PiecewiseCostOracle>(side, pc, caps);
    case OracleKind::kDistance:
      return std::make_unique<core::DistanceOracle>(side, pc);
  }
  throw std::logic_error("bad kind");
}

class OracleIncrementalEquivalence
    : public ::testing::TestWithParam<OracleKind> {};

TEST_P(OracleIncrementalEquivalence, RandomAcceptSequencesStayBitIdentical) {
  for (std::uint64_t seed : {3u, 11u}) {
    Scenario sc(seed);
    const core::NegotiationProblem& p = sc.problem;
    ASSERT_FALSE(p.negotiable.empty());

    routing::Assignment tentative = p.default_assignment;
    std::vector<char> remaining(p.negotiable.size(), 1);
    const core::OracleContext ctx{&p, &tentative, &remaining};

    for (int side = 0; side < 2; ++side) {
      auto inc_oracle = make_oracle(GetParam(), side, sc.caps);
      core::Evaluation latest = inc_oracle->evaluate(ctx);

      util::Rng rng(seed * 7919 + static_cast<std::uint64_t>(side));
      core::EvaluationDelta delta;
      std::vector<std::size_t> open_positions(p.negotiable.size());
      for (std::size_t i = 0; i < open_positions.size(); ++i)
        open_positions[i] = i;

      while (!open_positions.empty()) {
        // Accept a random open position at a random candidate.
        const std::size_t pick =
            static_cast<std::size_t>(rng.next_u64()) % open_positions.size();
        const std::size_t pos = open_positions[pick];
        open_positions.erase(open_positions.begin() +
                             static_cast<std::ptrdiff_t>(pick));
        const std::size_t ci =
            static_cast<std::size_t>(rng.next_u64()) % p.candidates.size();
        const std::size_t ix = p.candidates[ci];
        for (std::size_t m : p.members_of(pos)) {
          if (tentative.ix_of_flow[m] != ix)
            delta.moves.push_back(
                core::EvaluationDelta::Move{m, tentative.ix_of_flow[m], ix});
          tentative.ix_of_flow[m] = ix;
        }
        remaining[pos] = 0;
        delta.settled_positions.push_back(pos);

        // Re-evaluate after a batch of 1-3 accepts (reassignment quantum).
        if (rng.next_bool() || open_positions.empty()) {
          latest = inc_oracle->evaluate_incremental(ctx, delta);
          delta.clear();
          auto fresh = make_oracle(GetParam(), side, sc.caps);
          const core::Evaluation full = fresh->evaluate(ctx);
          ASSERT_TRUE(same_evaluation_bits(full, latest))
              << "side " << side << ", " << open_positions.size()
              << " positions left";
          EXPECT_LE(latest.rows_recomputed, p.negotiable.size());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOracles, OracleIncrementalEquivalence,
                         ::testing::Values(OracleKind::kBandwidthTentative,
                                           OracleKind::kBandwidthExcluded,
                                           OracleKind::kPiecewise,
                                           OracleKind::kDistance));

void expect_same_outcome(const core::NegotiationOutcome& a,
                         const core::NegotiationOutcome& b) {
  EXPECT_EQ(a.assignment.ix_of_flow, b.assignment.ix_of_flow);
  EXPECT_EQ(a.true_gain_a, b.true_gain_a);  // exact, not near
  EXPECT_EQ(a.true_gain_b, b.true_gain_b);
  EXPECT_EQ(a.disclosed_gain_a, b.disclosed_gain_a);
  EXPECT_EQ(a.disclosed_gain_b, b.disclosed_gain_b);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.flows_moved, b.flows_moved);
  EXPECT_EQ(a.flows_rolled_back, b.flows_rolled_back);
  EXPECT_EQ(a.reassignments, b.reassignments);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
}

class EngineIncrementalEquivalence
    : public ::testing::TestWithParam<OracleKind> {};

TEST_P(EngineIncrementalEquivalence, OutcomeMatchesFullRecompute) {
  for (std::uint64_t seed : {7u, 29u}) {
    Scenario sc(seed);
    const auto run = [&](bool incremental, int verify_every) {
      auto a = make_oracle(GetParam(), 0, sc.caps);
      auto b = make_oracle(GetParam(), 1, sc.caps);
      core::NegotiationConfig cfg;
      cfg.acceptance = core::AcceptancePolicy::kProtective;
      cfg.reassign_traffic_fraction = 0.05;
      cfg.incremental_evaluation = incremental;
      cfg.verify_incremental_every = verify_every;
      cfg.seed = seed * 31 + 1;
      core::NegotiationEngine engine(sc.problem, *a, *b, cfg);
      return engine.run();
    };
    const core::NegotiationOutcome full = run(false, 0);
    // verify_every=1 also exercises the cross-check on every refresh (it
    // throws on divergence, so merely completing is part of the assertion).
    const core::NegotiationOutcome inc = run(true, 1);
    expect_same_outcome(full, inc);
    EXPECT_EQ(inc.evaluate_calls_full, 2u);  // only the initial refresh
    if (full.reassignments > 0) {
      EXPECT_GT(inc.evaluate_calls_incremental, 0u);
    }
    // The headline property: incremental refreshes never recompute more
    // rows than the equivalent full recomputes (both modes make identical
    // decisions, so the refresh counts match).
    EXPECT_LE(inc.evaluate_rows_computed, full.evaluate_rows_computed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOracles, EngineIncrementalEquivalence,
                         ::testing::Values(OracleKind::kBandwidthTentative,
                                           OracleKind::kBandwidthExcluded,
                                           OracleKind::kPiecewise,
                                           OracleKind::kDistance));

/// An oracle whose incremental path corrupts one value: the engine's
/// cross-check must refuse to continue.
class LyingOracle : public core::PreferenceOracle {
 public:
  LyingOracle(int side, const routing::LoadMap& caps)
      : inner_(side, core::PreferenceConfig{}, caps) {}

  core::Evaluation evaluate(const core::OracleContext& ctx) override {
    return inner_.evaluate(ctx);
  }
  core::Evaluation evaluate_incremental(
      const core::OracleContext& ctx,
      const core::EvaluationDelta& delta) override {
    core::Evaluation e = inner_.evaluate_incremental(ctx, delta);
    if (!e.true_value.empty() && !e.true_value[0].empty())
      e.true_value[0][0] += 1.0;
    return e;
  }
  [[nodiscard]] bool wants_reassignment() const override { return true; }

 private:
  core::BandwidthOracle inner_;
};

TEST(EngineCrossCheck, CatchesLyingIncrementalOracle) {
  Scenario sc(7);
  LyingOracle a(0, sc.caps);
  core::BandwidthOracle b(1, core::PreferenceConfig{}, sc.caps);
  core::NegotiationConfig cfg;
  cfg.acceptance = core::AcceptancePolicy::kProtective;
  cfg.reassign_traffic_fraction = 0.01;  // refresh often
  cfg.incremental_evaluation = true;
  cfg.verify_incremental_every = 1;
  core::NegotiationEngine engine(sc.problem, a, b, cfg);
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

bool same_sample_bits(const sim::BandwidthSample& a,
                      const sim::BandwidthSample& b) {
  if (a.pair_label != b.pair_label || a.failed_ix != b.failed_ix ||
      a.flows_moved != b.flows_moved)
    return false;
  for (int side = 0; side < 2; ++side) {
    if (std::memcmp(&a.mel_default[side], &b.mel_default[side],
                    sizeof(double)) != 0 ||
        std::memcmp(&a.mel_negotiated[side], &b.mel_negotiated[side],
                    sizeof(double)) != 0 ||
        std::memcmp(&a.mel_optimal[side], &b.mel_optimal[side],
                    sizeof(double)) != 0)
      return false;
  }
  return true;
}

TEST(BandwidthExperiment, BitIdenticalAcrossThreadsAndIncrementalKnob) {
  sim::BandwidthExperimentConfig cfg;
  cfg.universe.isp_count = 18;
  cfg.universe.seed = 12;
  cfg.universe.max_pairs = 4;
  cfg.negotiation.reassign_traffic_fraction = 0.05;
  cfg.include_unilateral = false;

  cfg.threads = 1;
  const auto serial = run_bandwidth_experiment(cfg);
  ASSERT_FALSE(serial.empty());
  cfg.threads = 2;
  const auto threaded = run_bandwidth_experiment(cfg);

  sim::BandwidthExperimentConfig full_cfg = cfg;
  full_cfg.threads = 2;
  full_cfg.negotiation.incremental_evaluation = false;
  const auto full = run_bandwidth_experiment(full_cfg);

  ASSERT_EQ(serial.size(), threaded.size());
  ASSERT_EQ(serial.size(), full.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(same_sample_bits(serial[i], threaded[i])) << "sample " << i;
    EXPECT_TRUE(same_sample_bits(serial[i], full[i])) << "sample " << i;
  }
}

}  // namespace
}  // namespace nexit
