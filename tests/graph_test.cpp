#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace nexit::graph {
namespace {

Graph line_graph() {
  // 0 -1- 1 -2- 2 -3- 3, weights 1,2,3; lengths 10,20,30.
  Graph g(4);
  g.add_edge(0, 1, 1.0, 10.0);
  g.add_edge(1, 2, 2.0, 20.0);
  g.add_edge(2, 3, 3.0, 30.0);
  return g;
}

TEST(Graph, AddEdgeAndAdjacency) {
  Graph g = line_graph();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_EQ(g.other_end(0, 0), 1);
  EXPECT_EQ(g.other_end(0, 1), 0);
}

TEST(Graph, BadEndpointsThrow) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 1, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0, 1.0), std::invalid_argument);
}

TEST(Graph, OtherEndWrongNodeThrows) {
  Graph g = line_graph();
  EXPECT_THROW((void)g.other_end(0, 3), std::invalid_argument);
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(line_graph().connected());
  Graph g(3);
  g.add_edge(0, 1, 1, 1);
  EXPECT_FALSE(g.connected());
  Graph empty(0);
  EXPECT_FALSE(empty.connected());
}

TEST(ShortestPath, LineDistances) {
  Graph g = line_graph();
  ShortestPathTree t(g, 0);
  EXPECT_DOUBLE_EQ(t.distance(0), 0.0);
  EXPECT_DOUBLE_EQ(t.distance(1), 1.0);
  EXPECT_DOUBLE_EQ(t.distance(2), 3.0);
  EXPECT_DOUBLE_EQ(t.distance(3), 6.0);
  EXPECT_DOUBLE_EQ(t.path_length_km(3), 60.0);
}

TEST(ShortestPath, PathEdgesAndNodes) {
  Graph g = line_graph();
  ShortestPathTree t(g, 0);
  EXPECT_EQ(t.path_edges(3), (std::vector<EdgeIndex>{0, 1, 2}));
  EXPECT_EQ(t.path_nodes(3), (std::vector<NodeIndex>{0, 1, 2, 3}));
  EXPECT_TRUE(t.path_edges(0).empty());
}

TEST(ShortestPath, PrefersLighterRoute) {
  // Triangle: 0-1 w=10; 0-2 w=1; 2-1 w=1. Shortest 0->1 goes via 2.
  Graph g(3);
  g.add_edge(0, 1, 10.0, 100.0);
  g.add_edge(0, 2, 1.0, 5.0);
  g.add_edge(2, 1, 1.0, 5.0);
  ShortestPathTree t(g, 0);
  EXPECT_DOUBLE_EQ(t.distance(1), 2.0);
  EXPECT_DOUBLE_EQ(t.path_length_km(1), 10.0);
  EXPECT_EQ(t.path_nodes(1), (std::vector<NodeIndex>{0, 2, 1}));
}

TEST(ShortestPath, UnreachableReportsInfinity) {
  Graph g(3);
  g.add_edge(0, 1, 1, 1);
  ShortestPathTree t(g, 0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_THROW(t.path_edges(2), std::runtime_error);
}

TEST(ShortestPath, DeterministicTieBreak) {
  // Two equal-weight parallel routes 0->3: via 1 and via 2. The tree must
  // pick the same one every time (lower edge index wins).
  for (int trial = 0; trial < 5; ++trial) {
    Graph g(4);
    g.add_edge(0, 1, 1.0, 1.0);  // e0
    g.add_edge(1, 3, 1.0, 1.0);  // e1
    g.add_edge(0, 2, 1.0, 1.0);  // e2
    g.add_edge(2, 3, 1.0, 1.0);  // e3
    ShortestPathTree t(g, 0);
    EXPECT_EQ(t.path_nodes(3), (std::vector<NodeIndex>{0, 1, 3}));
  }
}

TEST(ShortestPath, SelfLoopIgnoredSafely) {
  Graph g(2);
  g.add_edge(0, 0, 1.0, 1.0);
  g.add_edge(0, 1, 2.0, 2.0);
  ShortestPathTree t(g, 0);
  EXPECT_DOUBLE_EQ(t.distance(1), 2.0);
}

TEST(AllPairs, MatchesSingleSource) {
  Graph g = line_graph();
  AllPairsShortestPaths ap(g);
  for (NodeIndex s = 0; s < 4; ++s) {
    ShortestPathTree t(g, s);
    for (NodeIndex d = 0; d < 4; ++d) {
      EXPECT_DOUBLE_EQ(ap.distance(s, d), t.distance(d));
    }
  }
}

TEST(AllPairs, SymmetricOnUndirectedGraph) {
  util::Rng rng(99);
  Graph g(12);
  // Random connected graph: spanning chain + extras.
  for (int i = 1; i < 12; ++i)
    g.add_edge(i - 1, i, rng.next_double(1, 10), rng.next_double(1, 10));
  for (int k = 0; k < 10; ++k) {
    const auto u = static_cast<NodeIndex>(rng.next_below(12));
    const auto v = static_cast<NodeIndex>(rng.next_below(12));
    if (u != v) g.add_edge(u, v, rng.next_double(1, 10), rng.next_double(1, 10));
  }
  AllPairsShortestPaths ap(g);
  for (NodeIndex a = 0; a < 12; ++a)
    for (NodeIndex b = 0; b < 12; ++b)
      EXPECT_NEAR(ap.distance(a, b), ap.distance(b, a), 1e-9);
}

TEST(ShortestPath, SourceOutOfRangeThrows) {
  Graph g(2);
  g.add_edge(0, 1, 1, 1);
  EXPECT_THROW(ShortestPathTree(g, 5), std::out_of_range);
}

}  // namespace
}  // namespace nexit::graph
