#include <gtest/gtest.h>

#include "capacity/capacity.hpp"
#include "core/oracles.hpp"
#include "test_topologies.hpp"

namespace nexit::core {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

struct Fixture {
  topology::IspPair pair = figure1_pair();
  routing::PairRouting routing{pair};
  std::vector<traffic::Flow> flows;
  NegotiationProblem problem;
  routing::Assignment tentative;
  std::vector<char> remaining;

  explicit Fixture(std::vector<traffic::Flow> fl) : flows(std::move(fl)) {
    problem = make_distance_problem(routing, flows, {0, 1, 2});
    tentative = problem.default_assignment;
    remaining.assign(problem.negotiable.size(), 1);
  }
  [[nodiscard]] OracleContext ctx() const {
    return OracleContext{&problem, &tentative, &remaining};
  }
};

TEST(DistanceOracle, DefaultAlternativeIsClassZero) {
  Fixture fx({make_flow(0, Direction::kAtoB, 0, 2)});
  DistanceOracle a(0, PreferenceConfig{});
  auto list = a.evaluate(fx.ctx()).classes;
  ASSERT_EQ(list.flows.size(), 1u);
  const std::size_t def = fx.problem.default_candidate(0);
  EXPECT_EQ(list.flows[0].pref_of_candidate[def], 0);
}

TEST(DistanceOracle, SignsFollowOwnDistance) {
  // Flow a0 -> b2, default early-exit = ix0 (0 km in A, 400 km in B).
  Fixture fx({make_flow(0, Direction::kAtoB, 0, 2)});
  DistanceOracle a(0, PreferenceConfig{});
  DistanceOracle b(1, PreferenceConfig{});
  auto la = a.evaluate(fx.ctx()).classes;
  auto lb = b.evaluate(fx.ctx()).classes;
  // For A (upstream): ix0 is closest (0km), others cost more -> negative.
  EXPECT_EQ(la.flows[0].pref_of_candidate[0], 0);
  EXPECT_LT(la.flows[0].pref_of_candidate[1], 0);
  EXPECT_LT(la.flows[0].pref_of_candidate[2],
            la.flows[0].pref_of_candidate[1]);
  // For B (downstream): ix2 enters at the destination -> strongly positive.
  EXPECT_EQ(lb.flows[0].pref_of_candidate[0], 0);
  EXPECT_GT(lb.flows[0].pref_of_candidate[2], 0);
  EXPECT_GT(lb.flows[0].pref_of_candidate[2], lb.flows[0].pref_of_candidate[1]);
}

TEST(DistanceOracle, LargestSwingMapsToExtremeClass) {
  Fixture fx({make_flow(0, Direction::kAtoB, 0, 2)});
  PreferenceConfig pc;
  pc.range = 10;
  DistanceOracle b(1, pc);
  auto lb = b.evaluate(fx.ctx()).classes;
  // B's largest saving is 400km (ix2): must map to +10.
  EXPECT_EQ(lb.flows[0].pref_of_candidate[2], 10);
}

TEST(DistanceOracle, OrdinalModeCompresses) {
  Fixture fx({make_flow(0, Direction::kAtoB, 0, 2)});
  PreferenceConfig pc;
  pc.ordinal = true;
  DistanceOracle b(1, pc);
  auto lb = b.evaluate(fx.ctx()).classes;
  for (PrefClass p : lb.flows[0].pref_of_candidate) {
    EXPECT_GE(p, -1);
    EXPECT_LE(p, 1);
  }
  EXPECT_EQ(lb.flows[0].pref_of_candidate[2], 1);
}

TEST(DistanceOracle, BadSideThrows) {
  EXPECT_THROW(DistanceOracle(2, PreferenceConfig{}), std::invalid_argument);
}

TEST(BandwidthOracle, OpenFlowsContributeNoLoad) {
  // Two identical flows; both open: each is judged against an empty network,
  // so all alternatives that avoid sharing look the same as default ->
  // everything class 0 when paths have equal capacity headroom.
  Fixture fx({make_flow(0, Direction::kAtoB, 0, 2, 1.0),
              make_flow(1, Direction::kAtoB, 0, 2, 1.0)});
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  BandwidthOracle b(1, PreferenceConfig{}, caps, OpenFlowModel::kExcluded);
  auto list = b.evaluate(fx.ctx()).classes;
  // Default ix0: B path ratio (0+1)/1 = 1 for both B links; via ix1: 1;
  // via ix2: empty path -> 0. So ix2 is +P, ix0/ix1 equal 0... ix1 touches
  // only edge b1-b2: same ratio 1 -> delta 0.
  EXPECT_EQ(list.flows[0].pref_of_candidate[0], 0);
  EXPECT_EQ(list.flows[0].pref_of_candidate[1], 0);
  EXPECT_GT(list.flows[0].pref_of_candidate[2], 0);
}

TEST(BandwidthOracle, SettledFlowBecomesBackground) {
  Fixture fx({make_flow(0, Direction::kAtoB, 0, 2, 1.0),
              make_flow(1, Direction::kAtoB, 0, 2, 1.0)});
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  BandwidthOracle b(1, PreferenceConfig{}, caps, OpenFlowModel::kExcluded);

  // Settle flow 0 on ix0 (loads both B edges with 1.0).
  fx.remaining[0] = 0;
  fx.tentative.ix_of_flow[0] = 0;
  auto list = b.evaluate(fx.ctx()).classes;
  // Flow 1 via default ix0 now rides on loaded links: ratio (1+1)/1 = 2.
  // Via ix2: 0. Delta(ix2) = +2 -> maps to +P; delta(ix0) = 0 by definition.
  EXPECT_EQ(list.flows[1].pref_of_candidate[0], 0);
  EXPECT_EQ(list.flows[1].pref_of_candidate[2], PreferenceConfig{}.range);
  // And settled flow 0 is judged with itself removed: same shape as before.
  EXPECT_EQ(list.flows[0].pref_of_candidate[0], 0);
}

TEST(BandwidthOracle, UpstreamSideSeesItsOwnLinks) {
  Fixture fx({make_flow(0, Direction::kAtoB, 2, 0, 1.0)});
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  BandwidthOracle a(0, PreferenceConfig{}, caps);
  auto list = a.evaluate(fx.ctx()).classes;
  // src a2, dst b0; default early exit = ix2 (0 km in A). Alternatives force
  // A-internal travel -> negative for A.
  const std::size_t def = fx.problem.default_candidate(0);
  EXPECT_EQ(def, 2u);
  EXPECT_EQ(list.flows[0].pref_of_candidate[2], 0);
  EXPECT_LT(list.flows[0].pref_of_candidate[0], 0);
}

TEST(BandwidthOracle, AtTentativeSeesOpenPileUp) {
  // Expected-state model: two open flows piling on the same default path
  // make each other visible, so moving away is positive immediately.
  Fixture fx({make_flow(0, Direction::kAtoB, 0, 2, 1.0),
              make_flow(1, Direction::kAtoB, 0, 2, 1.0)});
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  BandwidthOracle b(1, PreferenceConfig{}, caps, OpenFlowModel::kAtTentative);
  auto list = b.evaluate(fx.ctx()).classes;
  // Default ix0 for flow 0: the other open flow already loads both B links
  // (ratio (1+1)/1 = 2); via ix2 the B path is empty (0). Delta(ix2) = +2.
  EXPECT_EQ(list.flows[0].pref_of_candidate[0], 0);
  EXPECT_GT(list.flows[0].pref_of_candidate[2], 0);
  // And under kExcluded the same situation shows a smaller swing (1 -> 0).
  BandwidthOracle b_excl(1, PreferenceConfig{}, caps, OpenFlowModel::kExcluded);
  auto excl = b_excl.evaluate(fx.ctx()).classes;
  EXPECT_GT(list.flows[0].pref_of_candidate[2], 0);
  EXPECT_GT(excl.flows[0].pref_of_candidate[2], 0);
}

TEST(BandwidthOracle, NullContextThrows) {
  routing::LoadMap caps;
  BandwidthOracle b(1, PreferenceConfig{}, caps);
  OracleContext empty;
  EXPECT_THROW(b.evaluate(empty), std::invalid_argument);
}

}  // namespace
}  // namespace nexit::core
