#include <gtest/gtest.h>

#include "core/cheating.hpp"
#include "core/preference.hpp"

namespace nexit::core {
namespace {

TEST(Quantize, LinearMappingWithScale) {
  PreferenceConfig cfg;
  cfg.range = 10;
  // scale 100 -> +100km saved maps to +10, -50 to -5.
  auto prefs = quantize_deltas({100.0, -50.0, 0.0, 10.0}, cfg, 100.0);
  EXPECT_EQ(prefs, (std::vector<PrefClass>{10, -5, 0, 1}));
}

TEST(Quantize, ClampsToRange) {
  PreferenceConfig cfg;
  cfg.range = 5;
  auto prefs = quantize_deltas({1000.0, -1000.0}, cfg, 100.0);
  EXPECT_EQ(prefs, (std::vector<PrefClass>{5, -5}));
}

TEST(Quantize, ZeroScaleMapsEverythingToZero) {
  PreferenceConfig cfg;
  auto prefs = quantize_deltas({3.0, -7.0}, cfg, 0.0);
  EXPECT_EQ(prefs, (std::vector<PrefClass>{0, 0}));
}

TEST(Quantize, OrdinalModeSignsOnly) {
  PreferenceConfig cfg;
  cfg.ordinal = true;
  auto prefs = quantize_deltas({42.0, -0.5, 0.0}, cfg, 42.0);
  EXPECT_EQ(prefs, (std::vector<PrefClass>{1, -1, 0}));
}

TEST(Quantize, RoundsToNearestClass) {
  PreferenceConfig cfg;
  cfg.range = 10;
  // 14 km on scale 100: 1.4 -> 1; 16 km: 1.6 -> 2.
  auto prefs = quantize_deltas({14.0, 16.0, -14.0, -16.0}, cfg, 100.0);
  EXPECT_EQ(prefs, (std::vector<PrefClass>{1, 2, -1, -2}));
}

TEST(Quantize, BadRangeThrows) {
  PreferenceConfig cfg;
  cfg.range = 0;
  EXPECT_THROW(quantize_deltas({1.0}, cfg, 1.0), std::invalid_argument);
}

TEST(MaxAbsDelta, OverNestedVectors) {
  EXPECT_DOUBLE_EQ(max_abs_delta({{1.0, -3.0}, {2.0}}), 3.0);
  EXPECT_DOUBLE_EQ(max_abs_delta({}), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_delta({{}}), 0.0);
}

// --- Cheating transform (§5.4) --------------------------------------------

TEST(Cheating, InflatesBestAlternativeToMaxSum) {
  // Own truth: {2, 0}; remote: {0, 5}. Max sum is alt1 (0+5=5). The cheater's
  // best is alt0; it inflates alt0 to 5 - 0 = 5 so alt0 ties the max.
  auto lie = CheatingOracle::transform_flow({2, 0}, {0, 5}, 10);
  EXPECT_EQ(lie[0] + 0, 5);
  EXPECT_LE(lie[1] + 5, lie[0] + 0 + 0 + 5);  // alt0 sum is max
  EXPECT_GE(lie[0] + 0, lie[1] + 5);
}

TEST(Cheating, NoChangeWhenAlreadyMaxSum) {
  // Own best already attains max combined sum: disclose truthfully.
  auto lie = CheatingOracle::transform_flow({5, 0}, {0, 0}, 10);
  EXPECT_EQ(lie, (std::vector<PrefClass>{5, 0}));
}

TEST(Cheating, DeflatesOthersWhenCapBinds) {
  // Own: {1, 0}; remote: {0, 20}. With P=10, inflating alt0 to 20 is
  // impossible (cap 10); competitors must be deflated so alt0 still wins:
  // alt1 <= 10 + 0 - 20 = -10.
  auto lie = CheatingOracle::transform_flow({1, 0}, {0, 20}, 10);
  EXPECT_EQ(lie[0], 10);
  EXPECT_LE(lie[1], -10);
  EXPECT_GE(lie[0] + 0, lie[1] + 20);
}

TEST(Cheating, PreservesOrderingAmongOthers) {
  // Inflation touches only the best alternative when the cap is not binding.
  auto lie = CheatingOracle::transform_flow({3, 2, -1}, {4, 0, 0}, 10);
  // Max sum initially: alt0: 3+4=7; own best alt0 already max: unchanged.
  EXPECT_EQ(lie, (std::vector<PrefClass>{3, 2, -1}));
}

TEST(Cheating, BestAlternativeWinsSelectionAfterLie) {
  // Whatever the inputs, after the lie the cheater's best alternative must
  // attain the maximum combined (disclosed + remote) sum.
  const std::vector<std::vector<PrefClass>> owns = {
      {0, 0, 0}, {5, -5, 2}, {-3, -1, -2}, {10, 9, 8}};
  const std::vector<std::vector<PrefClass>> remotes = {
      {1, 7, -2}, {0, 0, 10}, {-5, 5, 0}, {3, 3, 3}};
  for (const auto& own : owns) {
    for (const auto& remote : remotes) {
      auto lie = CheatingOracle::transform_flow(own, remote, 10);
      std::size_t best = 0;
      for (std::size_t c = 1; c < own.size(); ++c)
        if (own[c] > own[best]) best = c;
      int max_sum = lie[0] + remote[0];
      for (std::size_t c = 0; c < own.size(); ++c)
        max_sum = std::max(max_sum, lie[c] + remote[c]);
      EXPECT_EQ(lie[best] + remote[best], max_sum)
          << "best alt not selected after lie";
      for (PrefClass p : lie) {
        EXPECT_GE(p, -10);
        EXPECT_LE(p, 10);
      }
    }
  }
}

TEST(Cheating, SizeMismatchThrows) {
  EXPECT_THROW(CheatingOracle::transform_flow({1}, {1, 2}, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace nexit::core
