// Durable negotiation (runtime/snapshot + proto/snapshot_messages): the
// checkpoint/WAL wire format round-trips and refuses version skew; and the
// headline crash-recovery contract — a session killed at ANY virtual tick
// and resumed later produces the same outcome, per-session counters, and
// obs snapshot as an uninterrupted run — pinned by an exhaustive kill-point
// sweep plus randomized kill/resume interleavings. Corrupt or truncated
// logs must fail restore cleanly (fresh negotiation, counted in obs),
// never resume as wrong data; a schema-version mismatch must refuse
// loudly (exit 2), because silently renegotiating would mask a deployment
// error. The golden fixture under tests/fixtures/ freezes the v1 bytes.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "proto/frame.hpp"
#include "proto/snapshot_messages.hpp"
#include "runtime/scenario.hpp"
#include "runtime/session.hpp"
#include "runtime/snapshot.hpp"
#include "test_digest.hpp"

namespace nexit::runtime {
namespace {

using nexit::testing::expect_reports_equal;
using nexit::testing::read_file;
using nexit::testing::temp_path;

// --- proto round trips -------------------------------------------------------

proto::SnapshotCheckpoint sample_checkpoint() {
  proto::SnapshotCheckpoint cp;
  cp.session = 3;
  cp.status = static_cast<std::uint8_t>(SessionStatus::kRunning);
  cp.attempts = 2;
  cp.retries_used = 1;
  cp.steps = 17;
  cp.messages = 23;
  cp.timeouts = 1;
  cp.started_at = 4;
  cp.attempt_began = 9;
  return cp;
}

proto::SnapshotWalEvent sample_wal_event() {
  proto::SnapshotWalEvent ev;
  ev.kind = static_cast<std::uint8_t>(proto::WalEventKind::kPump);
  ev.tick = 11;
  ev.pre_status = static_cast<std::uint8_t>(SessionStatus::kRunning);
  ev.pre_attempts = 2;
  ev.pre_retries = 1;
  ev.pre_steps = 17;
  ev.pre_messages = 23;
  ev.pre_timeouts = 1;
  ev.mark.live = 1;
  ev.mark.state_a = 2;
  ev.mark.state_b = 3;
  ev.mark.round = 5;
  ev.mark.remaining = 2;
  ev.mark.disclosed_gain_a = 7;
  ev.mark.disclosed_gain_b = -2;
  ev.mark.true_gain_a = 1.25;
  ev.mark.pending_moves = 1;
  ev.mark.pending_settles = 0;
  ev.mark.assignment = {0, 2, 1};
  return ev;
}

TEST(SnapshotProto, CheckpointRoundTrips) {
  const proto::SnapshotCheckpoint cp = sample_checkpoint();
  const auto decoded =
      proto::decode_snapshot_checkpoint(proto::encode_snapshot_checkpoint(cp));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value(), cp);
}

TEST(SnapshotProto, WalEventRoundTrips) {
  const proto::SnapshotWalEvent ev = sample_wal_event();
  const auto decoded =
      proto::decode_snapshot_wal_event(proto::encode_snapshot_wal_event(ev));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value(), ev);

  proto::SnapshotWalEvent cancel;
  cancel.kind = static_cast<std::uint8_t>(proto::WalEventKind::kCancel);
  cancel.tick = 8;
  cancel.note = "link failed";
  const auto dec2 =
      proto::decode_snapshot_wal_event(proto::encode_snapshot_wal_event(cancel));
  ASSERT_TRUE(dec2.ok());
  EXPECT_EQ(dec2.value(), cancel);
}

TEST(SnapshotProto, VersionMismatchIsDistinguishedFromCorruption) {
  proto::SnapshotCheckpoint cp = sample_checkpoint();
  cp.version = proto::kSnapshotVersion + 1;
  const auto decoded =
      proto::decode_snapshot_checkpoint(proto::encode_snapshot_checkpoint(cp));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.error().message.starts_with("snapshot version mismatch"))
      << decoded.error().message;
}

TEST(SnapshotProto, WrongFrameTypeIsRejected) {
  proto::Frame f = proto::encode_snapshot_checkpoint(sample_checkpoint());
  f.type =
      static_cast<std::uint8_t>(proto::SnapshotMessageType::kSnapshotWalEvent);
  EXPECT_FALSE(proto::decode_snapshot_checkpoint(f).ok());
  proto::Frame w = proto::encode_snapshot_wal_event(sample_wal_event());
  w.type =
      static_cast<std::uint8_t>(proto::SnapshotMessageType::kSnapshotCheckpoint);
  EXPECT_FALSE(proto::decode_snapshot_wal_event(w).ok());
}

TEST(SnapshotProto, TruncatedPayloadFailsCleanly) {
  proto::Frame f = proto::encode_snapshot_wal_event(sample_wal_event());
  for (std::size_t keep = 0; keep < f.payload.size(); ++keep) {
    proto::Frame cut = f;
    cut.payload.resize(keep);
    EXPECT_FALSE(proto::decode_snapshot_wal_event(cut).ok()) << keep;
  }
}

// --- journal bookkeeping -----------------------------------------------------

TEST(SessionJournal, CheckpointSupersedesTheWal) {
  SessionJournal j(7, "");
  proto::SnapshotCheckpoint cp = sample_checkpoint();
  cp.session = 7;
  j.write_checkpoint(cp);
  j.append_event(sample_wal_event());
  j.append_event(sample_wal_event());
  EXPECT_EQ(j.checkpoints(), 1u);
  EXPECT_EQ(j.wal_events(), 2u);
  EXPECT_FALSE(j.wal_bytes().empty());

  cp.attempts = 3;  // retry boundary: nothing before it is needed anymore
  j.write_checkpoint(cp);
  EXPECT_EQ(j.checkpoints(), 2u);
  EXPECT_EQ(j.wal_events(), 0u);
  EXPECT_TRUE(j.wal_bytes().empty());
}

TEST(SessionJournalFiles, MirrorsBytesToDisk) {
  const std::string dir = temp_path("_journal");
  SessionJournal j(5, dir);
  proto::SnapshotCheckpoint cp = sample_checkpoint();
  cp.session = 5;
  j.write_checkpoint(cp);
  j.append_event(sample_wal_event());

  const std::string snap = read_file(dir + "/session_5.snap");
  const std::string wal = read_file(dir + "/session_5.wal");
  ASSERT_EQ(snap.size(), j.snapshot_bytes().size());
  ASSERT_EQ(wal.size(), j.wal_bytes().size());
  EXPECT_TRUE(std::equal(j.snapshot_bytes().begin(), j.snapshot_bytes().end(),
                         reinterpret_cast<const std::uint8_t*>(snap.data())));
  EXPECT_TRUE(std::equal(j.wal_bytes().begin(), j.wal_bytes().end(),
                         reinterpret_cast<const std::uint8_t*>(wal.data())));
}

// --- crash-resume: the durability contract -----------------------------------

ScenarioConfig crash_config() {
  ScenarioConfig cfg;
  cfg.universe.isp_count = 20;
  cfg.universe.seed = 5;
  cfg.universe.max_pairs = 4;
  cfg.min_links = 2;
  cfg.seed = 11;
  cfg.start_stagger = 2;
  // Small pump bursts stretch negotiations over many ticks, so kill points
  // land at every interesting phase (handshake, mid-round, settlement).
  cfg.limits.max_steps_per_pump = 2;
  return cfg;
}

ScenarioReport run_with_events(ScenarioConfig cfg,
                               std::vector<ScenarioEvent> events,
                               std::size_t threads = 1) {
  cfg.events = std::move(events);
  cfg.runtime.threads = threads;
  return run_scenario(std::move(cfg));
}

TEST(CrashResume, KillWithoutResumeFreezesTheSession) {
  obs::Registry::global().reset_counters();
  const ScenarioReport report =
      run_with_events(crash_config(), {{3, EventKind::kKill, 0, 0}});
  EXPECT_EQ(report.sessions[0].status, SessionStatus::kKilled);
  EXPECT_EQ(report.stats.killed, 1u);
  bool counted = false;
  for (const auto& c : obs::Registry::global().snapshot().counters)
    if (c.name == "runtime.sessions_killed") counted = c.value == 1;
  EXPECT_TRUE(counted);
  // The other sessions are untouched.
  for (std::size_t i = 1; i < report.sessions.size(); ++i)
    EXPECT_EQ(report.sessions[i].status, SessionStatus::kDone) << i;
}

// The headline invariant, exhaustively: kill the target session at EVERY
// virtual tick the uninterrupted run passes through (plus a margin past the
// end), resume a few ticks later, and require the full report — every
// session's status, counters, start/finish ticks, and outcome — to be
// bit-identical to the uninterrupted run's.
TEST(CrashResume, ExhaustiveKillPointSweepMatchesUninterrupted) {
  const ScenarioConfig base = crash_config();
  Scenario probe(base);
  const ScenarioReport uninterrupted = probe.run();
  for (const auto& s : uninterrupted.sessions)
    ASSERT_EQ(s.status, SessionStatus::kDone) << s.error;
  const Tick horizon = probe.manager().now() + 2;

  for (std::uint32_t session = 0; session < uninterrupted.sessions.size();
       ++session) {
    for (Tick t = 0; t <= horizon; ++t) {
      const ScenarioReport resumed =
          run_with_events(base, {{t, EventKind::kKill, session, 0},
                                 {t + 2, EventKind::kResume, session, 0}});
      SCOPED_TRACE("kill@" + std::to_string(t) + "/" +
                   std::to_string(session));
      expect_reports_equal(uninterrupted, resumed);
    }
  }
}

TEST(CrashResume, KillPointSweepHoldsAcrossThreadCounts) {
  const ScenarioConfig base = crash_config();
  Scenario probe(base);
  const ScenarioReport uninterrupted = probe.run();
  const Tick horizon = probe.manager().now() + 2;
  for (Tick t = 0; t <= horizon; ++t) {
    const ScenarioReport resumed =
        run_with_events(base, {{t, EventKind::kKill, 1, 0},
                               {t + 3, EventKind::kResume, 1, 0}},
                        /*threads=*/4);
    SCOPED_TRACE("kill@" + std::to_string(t) + "/1 --threads=4");
    expect_reports_equal(uninterrupted, resumed);
  }
}

// 200 randomized interleavings: several sessions each killed and resumed
// (possibly repeatedly) at random ticks with random downtimes. Alternation
// is enforced by construction — each session's next kill starts at or
// after its previous resume.
TEST(CrashResume, RandomizedKillResumeInterleavingsMatchUninterrupted) {
  const ScenarioConfig base = crash_config();
  const ScenarioReport uninterrupted = run_scenario(base);
  const auto sessions =
      static_cast<std::uint32_t>(uninterrupted.sessions.size());

  std::mt19937 rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ScenarioEvent> events;
    std::vector<Tick> next_free(sessions, 0);
    const int cycles = 1 + static_cast<int>(rng() % 4);
    for (int c = 0; c < cycles; ++c) {
      const std::uint32_t s = rng() % sessions;
      const Tick kill_at = next_free[s] + rng() % 8;
      const Tick resume_at = kill_at + 1 + rng() % 5;
      events.push_back({kill_at, EventKind::kKill, s, 0});
      events.push_back({resume_at, EventKind::kResume, s, 0});
      next_free[s] = resume_at;
    }
    const std::size_t threads = 1 + (trial % 2) * 3;  // alternate 1 and 4
    const ScenarioReport resumed =
        run_with_events(base, std::move(events), threads);
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_reports_equal(uninterrupted, resumed);
  }
}

TEST(CrashResume, ObsCountersEqualUninterrupted) {
  // The obs snapshot is part of the JSON record, so the durability
  // contract extends to it: a healthy kill/resume cycle adds no counters.
  const ScenarioConfig base = crash_config();
  obs::Registry::global().reset_counters();
  (void)run_scenario(base);
  const obs::Snapshot plain = obs::Registry::global().snapshot();

  obs::Registry::global().reset_counters();
  (void)run_with_events(base, {{3, EventKind::kKill, 0, 0},
                               {7, EventKind::kResume, 0, 0}});
  const obs::Snapshot resumed = obs::Registry::global().snapshot();

  ASSERT_EQ(plain.counters.size(), resumed.counters.size());
  for (std::size_t i = 0; i < plain.counters.size(); ++i) {
    EXPECT_EQ(plain.counters[i].name, resumed.counters[i].name);
    EXPECT_EQ(plain.counters[i].value, resumed.counters[i].value)
        << plain.counters[i].name;
  }
}

TEST(CrashResume, CorruptJournalFallsBackToFreshNegotiationInRun) {
  // Corrupt the killed session's snapshot between kill and resume: the
  // resume must refuse the log (never resume wrong data), count a restore
  // failure in obs, and renegotiate from scratch to the same assignment.
  const ScenarioConfig base = crash_config();
  const ScenarioReport uninterrupted = run_scenario(base);

  ScenarioConfig cfg = base;
  cfg.events = {{3, EventKind::kKill, 0, 0}, {6, EventKind::kResume, 0, 0}};
  Scenario scenario(cfg);
  scenario.manager().at(4, [&scenario](Tick) {
    SessionJournal& j = scenario.snapshot_store()->journal(0);
    proto::Bytes snap = j.snapshot_bytes();
    ASSERT_FALSE(snap.empty());
    snap[snap.size() / 2] ^= 0x40;  // payload bit flip: CRC must catch it
    j.load(std::move(snap), j.wal_bytes());
  });
  obs::Registry::global().reset_counters();
  const ScenarioReport report = scenario.run();

  ASSERT_EQ(report.sessions[0].status, SessionStatus::kDone)
      << report.sessions[0].error;
  EXPECT_EQ(report.sessions[0].outcome.assignment.ix_of_flow,
            uninterrupted.sessions[0].outcome.assignment.ix_of_flow);
  bool counted = false;
  for (const auto& c : obs::Registry::global().snapshot().counters)
    if (c.name == "runtime.restore_failures") counted = c.value == 1;
  EXPECT_TRUE(counted);
}

/// Byte length of the frame starting at `off` (header + payload + crc), so
/// tests can cut a WAL at a frame boundary without a decoder.
std::size_t frame_size_at(const proto::Bytes& b, std::size_t off) {
  const std::size_t len =
      b[off + 4] | (b[off + 5] << 8) | (b[off + 6] << 16) |
      (static_cast<std::size_t>(b[off + 7]) << 24);
  return 8 + len + 4;
}

TEST(CrashResume, CleanTruncatedWalTailStillResumesOnTrajectory) {
  // Dropping whole trailing WAL frames is lost work, not corruption: the
  // replayed prefix is a state the uninterrupted run passed through, so
  // the session must still converge to the identical assignment.
  const ScenarioConfig base = crash_config();
  const ScenarioReport uninterrupted = run_scenario(base);

  ScenarioConfig cfg = base;
  cfg.events = {{5, EventKind::kKill, 0, 0}, {9, EventKind::kResume, 0, 0}};
  Scenario scenario(cfg);
  scenario.manager().at(6, [&scenario](Tick) {
    SessionJournal& j = scenario.snapshot_store()->journal(0);
    const proto::Bytes& wal = j.wal_bytes();
    if (wal.empty()) return;  // killed before any WAL record: nothing to cut
    proto::Bytes cut(
        wal.begin(),
        wal.begin() + static_cast<std::ptrdiff_t>(frame_size_at(wal, 0)));
    j.load(j.snapshot_bytes(), std::move(cut));
  });
  const ScenarioReport report = scenario.run();

  ASSERT_EQ(report.sessions[0].status, SessionStatus::kDone)
      << report.sessions[0].error;
  EXPECT_EQ(report.sessions[0].outcome.assignment.ix_of_flow,
            uninterrupted.sessions[0].outcome.assignment.ix_of_flow);
}

TEST(CrashResume, TruncatedCheckpointFailsRestoreCleanly) {
  // A WAL tail cut is lost work (see CleanTruncatedWalTail... above), but
  // the checkpoint is load-bearing: cutting inside its frame leaves restore
  // nothing trustworthy to rebuild from, so it must fall back to a fresh
  // negotiation — never apply a half-read record.
  const ScenarioConfig base = crash_config();
  const ScenarioReport uninterrupted = run_scenario(base);

  ScenarioConfig cfg = base;
  cfg.events = {{5, EventKind::kKill, 0, 0}, {9, EventKind::kResume, 0, 0}};
  Scenario scenario(cfg);
  bool cut_happened = false;
  scenario.manager().at(6, [&scenario, &cut_happened](Tick) {
    SessionJournal& j = scenario.snapshot_store()->journal(0);
    const proto::Bytes& snap = j.snapshot_bytes();
    if (snap.size() < 12) return;
    proto::Bytes cut(snap.begin(), snap.end() - 3);
    j.load(std::move(cut), proto::Bytes(j.wal_bytes()));
    cut_happened = true;
  });
  obs::Registry::global().reset_counters();
  const ScenarioReport report = scenario.run();

  ASSERT_EQ(report.sessions[0].status, SessionStatus::kDone)
      << report.sessions[0].error;
  EXPECT_EQ(report.sessions[0].outcome.assignment.ix_of_flow,
            uninterrupted.sessions[0].outcome.assignment.ix_of_flow);
  if (cut_happened) {
    bool counted = false;
    for (const auto& c : obs::Registry::global().snapshot().counters)
      if (c.name == "runtime.restore_failures") counted = c.value == 1;
    EXPECT_TRUE(counted);
  }
}

// --- golden fixture: the frozen v1 bytes -------------------------------------

proto::Bytes fixture_bytes() {
  // __FILE__ is the absolute source path under CMake, so the fixture
  // resolves regardless of the ctest working directory.
  const std::string here = __FILE__;
  const std::string dir = here.substr(0, here.rfind('/'));
  const std::string blob = read_file(dir + "/fixtures/session_snapshot_v1.bin");
  return proto::Bytes(blob.begin(), blob.end());
}

TEST(SnapshotFixture, GoldenBytesDecodeAndReencodeBitExact) {
  // The committed blob is checkpoint frame + one pump WAL record + one kill
  // WAL record, exactly as sample_checkpoint()/sample_wal_event() describe.
  // If this test fails after an intentional schema change, bump
  // kSnapshotVersion and regenerate the fixture (docs/ARCHITECTURE.md
  // § Durability has the recipe).
  const proto::Bytes blob = fixture_bytes();
  ASSERT_FALSE(blob.empty()) << "fixture missing: run tests from the repo root";

  proto::Bytes expected;
  const auto append = [&expected](const proto::Frame& f) {
    const proto::Bytes b = proto::encode_frame(f);
    expected.insert(expected.end(), b.begin(), b.end());
  };
  append(proto::encode_snapshot_checkpoint(sample_checkpoint()));
  append(proto::encode_snapshot_wal_event(sample_wal_event()));
  proto::SnapshotWalEvent kill = sample_wal_event();
  kill.kind = static_cast<std::uint8_t>(proto::WalEventKind::kKill);
  kill.tick = 13;
  append(proto::encode_snapshot_wal_event(kill));
  EXPECT_EQ(blob, expected) << "encoder output drifted from the v1 fixture";

  // And the bytes decode back to the pinned values.
  proto::FrameDecoder d;
  d.feed(blob);
  const auto cp_frame = d.next();
  ASSERT_TRUE(cp_frame.has_value());
  const auto cp = proto::decode_snapshot_checkpoint(*cp_frame);
  ASSERT_TRUE(cp.ok()) << cp.error().message;
  EXPECT_EQ(cp.value(), sample_checkpoint());
  const auto ev_frame = d.next();
  ASSERT_TRUE(ev_frame.has_value());
  const auto ev = proto::decode_snapshot_wal_event(*ev_frame);
  ASSERT_TRUE(ev.ok()) << ev.error().message;
  EXPECT_EQ(ev.value(), sample_wal_event());
  const auto kill_frame = d.next();
  ASSERT_TRUE(kill_frame.has_value());
  const auto kv = proto::decode_snapshot_wal_event(*kill_frame);
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv.value(), kill);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.failed());
}

/// Kills session 0, hands it a journal stamped with a future schema
/// version, and resumes: restore must exit(2) with the distinguished
/// message (the death test below pins that).
void resume_with_future_schema() {
  ScenarioConfig cfg = crash_config();
  cfg.events = {{3, EventKind::kKill, 0, 0}};
  Scenario scenario(cfg);
  (void)scenario.run();
  proto::SnapshotCheckpoint cp = sample_checkpoint();
  cp.session = 0;
  cp.version = proto::kSnapshotVersion + 1;
  SessionJournal& j = scenario.snapshot_store()->journal(0);
  j.load(proto::encode_frame(proto::encode_snapshot_checkpoint(cp)), {});
  std::string why;
  (void)scenario.manager().session(0).resume(scenario.manager().now() + 1, 0,
                                             &why);
}

TEST(SnapshotDeathTest, VersionMismatchRefusesLoudly) {
  // A journal written by a future schema must stop the run with a clear
  // error, not silently renegotiate: restore calls std::exit(2).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(resume_with_future_schema(), ::testing::ExitedWithCode(2),
              "snapshot version mismatch");
}

}  // namespace
}  // namespace nexit::runtime
