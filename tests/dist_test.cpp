// The distributed sweep & runtime layer (src/dist): dist message framing
// round trips, malformed-frame rejection, the TCP channel transport, the
// coordinator/worker job protocol, and the headline contract — a sweep
// sharded across worker processes produces a byte-identical JSON record
// and digest for every worker count, including after a worker is killed
// mid-shard.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "agent/channel.hpp"
#include "dist/coordinator.hpp"
#include "dist/framed.hpp"
#include "dist/tcp_channel.hpp"
#include "dist/worker.hpp"
#include "obs/registry.hpp"
#include "proto/dist_messages.hpp"
#include "proto/frame.hpp"
#include "runtime/scenario.hpp"
#include "sim/scenarios.hpp"
#include "sim/spec.hpp"
#include "test_digest.hpp"
#include "util/digest.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace nexit {
namespace {

using nexit::testing::kv_flags;
using nexit::testing::read_file;
using nexit::testing::temp_path;

/// Directory of this test binary — where the build put nexit_workerd too.
std::string build_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

bool workerd_available() {
  return ::access((build_dir() + "/nexit_workerd").c_str(), X_OK) == 0;
}

// --- dist message framing ------------------------------------------------

proto::DistResult sample_result() {
  proto::DistResult r;
  r.job = 3;
  r.rc = 0;
  r.digest = 0xdeadbeefcafef00dull;
  r.metrics = {{"mean_gain", "1.25"}, {"digest-excluded", "\"text\""}};
  r.counters = {{"engine.proposals", 42}, {"wire.frames", 7}};
  proto::DistObsHistogram h;
  h.name = "wire.frame_bytes";
  h.count = 7;
  h.sum = 900;
  h.buckets = {{5, 3}, {8, 4}};
  r.histograms = {h};
  return r;
}

TEST(DistMessages, SpecShardRoundTripsThroughFraming) {
  sim::ExperimentSpec spec;
  spec.merge_from_flags(kv_flags({"isps=12", "pairs=2", "seed=7"}));
  proto::DistJob job;
  job.job = 5;
  job.scenario = "custom";
  job.label = "isps=12";
  job.spec_text = spec.to_text();

  const proto::Bytes stream =
      proto::encode_frame(proto::encode_dist_message(job));
  // Feed one byte at a time: the decoder must reassemble across arbitrary
  // chunk boundaries (what TCP actually delivers).
  proto::FrameDecoder decoder;
  std::optional<proto::Frame> frame;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_FALSE(frame.has_value());
    decoder.feed(stream.data() + i, 1);
    if (auto f = decoder.next()) frame = std::move(f);
  }
  ASSERT_TRUE(frame.has_value());
  auto decoded = proto::decode_dist_message(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_TRUE(std::holds_alternative<proto::DistJob>(decoded.value()));
  const auto& round = std::get<proto::DistJob>(decoded.value());
  EXPECT_EQ(round, job);

  // And the shard's spec text reparses into the identical spec.
  sim::ExperimentSpec reparsed;
  std::vector<std::string> lines;
  std::istringstream in(round.spec_text);
  for (std::string line; std::getline(in, line);)
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  reparsed.merge_from_flags(kv_flags(lines));
  EXPECT_EQ(spec, reparsed);
}

TEST(DistMessages, AllTypesRoundTrip) {
  const proto::DistMessage messages[] = {
      proto::DistHello{}, proto::DistJob{9, "fig4", "p", "isps=12\n"},
      sample_result(), proto::DistShutdown{}};
  for (const proto::DistMessage& m : messages) {
    proto::FrameDecoder decoder;
    decoder.feed(proto::encode_frame(proto::encode_dist_message(m)));
    auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    auto decoded = proto::decode_dist_message(*frame);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value(), m);
  }
}

TEST(DistMessages, MalformedAndTruncatedFramesAreRejected) {
  // A negotiation-protocol type byte is not a dist message.
  proto::Frame wrong;
  wrong.type = 1;
  EXPECT_FALSE(proto::decode_dist_message(wrong).ok());

  // A truncated payload fails cleanly, never over-reads.
  proto::Frame truncated = proto::encode_dist_message(sample_result());
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_FALSE(proto::decode_dist_message(truncated).ok());

  // Trailing garbage after a valid payload is rejected too.
  proto::Frame padded = proto::encode_dist_message(proto::DistHello{});
  padded.payload.push_back(0);
  EXPECT_FALSE(proto::decode_dist_message(padded).ok());

  // Seeded fuzz (the proto_fuzz discipline): random payloads under the
  // dist type bytes must produce error Results, not crashes.
  util::Rng rng(0xd157);
  for (int trial = 0; trial < 300; ++trial) {
    proto::Frame f;
    f.type = static_cast<std::uint8_t>(16 + rng.next_below(4));
    f.payload.resize(rng.next_below(128));
    for (auto& b : f.payload)
      b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto result = proto::decode_dist_message(f);
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty());
    }
  }

  // A bit flip inside an encoded job frame is caught at the CRC layer.
  proto::Bytes stream = proto::encode_frame(
      proto::encode_dist_message(proto::DistJob{1, "custom", "", "seed=1\n"}));
  stream[stream.size() / 2] ^= 0x20;
  proto::FrameDecoder decoder;
  decoder.feed(stream);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
}

// --- TCP transport -------------------------------------------------------

TEST(TcpChannel, ParseEndpoint) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(dist::parse_endpoint("127.0.0.1:9000", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  EXPECT_TRUE(dist::parse_endpoint("localhost:1", &host, &port));
  EXPECT_FALSE(dist::parse_endpoint("no-port", &host, &port));
  EXPECT_FALSE(dist::parse_endpoint(":123", &host, &port));
  EXPECT_FALSE(dist::parse_endpoint("host:", &host, &port));
  EXPECT_FALSE(dist::parse_endpoint("host:abc", &host, &port));
  EXPECT_FALSE(dist::parse_endpoint("host:70000", &host, &port));
  EXPECT_FALSE(dist::parse_endpoint("host:123x", &host, &port));
}

TEST(TcpChannel, LoopbackPairCarriesFramesAcrossPartialWrites) {
  auto pair = dist::make_tcp_channel_pair();
  dist::FramedChannel a(std::move(pair.first));
  dist::FramedChannel b(std::move(pair.second));

  // A job bigger than any socket buffer: the sender must loop on short
  // writes while the receiver reassembles partial reads.
  proto::DistJob big;
  big.job = 1;
  big.scenario = "custom";
  big.spec_text.assign(300000, 'x');

  std::optional<proto::DistMessage> received;
  std::thread receiver([&] { received = b.receive(10000); });
  EXPECT_TRUE(a.send(big, 10000));
  receiver.join();
  ASSERT_TRUE(received.has_value());
  ASSERT_TRUE(std::holds_alternative<proto::DistJob>(*received));
  EXPECT_EQ(std::get<proto::DistJob>(*received), big);

  // Closing one end surfaces as failure on the other, not a hang.
  a.channel().close();
  EXPECT_FALSE(b.receive(1000).has_value());
  EXPECT_TRUE(b.failed());
}

TEST(TcpChannel, RuntimeNegotiationOverTcpMatchesUnixSocketpair) {
  // The same declared runtime timeline over AF_UNIX socketpairs and over
  // TCP loopback pairs must land on the identical outcome digest — the
  // transport is below the determinism line.
  const std::vector<std::string> base = {
      "experiment=runtime",  "isps=30",   "seed=11",
      "pairs=1",             "traffic=gravity",
      "runtime.min-links=3", "runtime.burst=2",
      "runtime.events=fail@1/0/busiest"};
  auto run_with = [&](const std::string& transport) {
    sim::ExperimentSpec spec;
    std::vector<std::string> lines = base;
    lines.push_back("runtime.transport=" + transport);
    spec.merge_from_flags(kv_flags(lines));
    std::string error;
    EXPECT_TRUE(spec.validate(&error)) << error;
    runtime::Scenario scenario(sim::runtime_config_of(spec));
    return runtime::outcome_digest(scenario.run());
  };
  EXPECT_EQ(run_with("socket"), run_with("tcp"));
}

// --- spec surface --------------------------------------------------------

TEST(DistSpec, ValidateRejectsUnshardableAndConflictingConfigs) {
  std::string error;

  // dist.* needs something to shard: a single-point distance run has
  // exactly one unit of work.
  sim::ExperimentSpec single;
  single.merge_from_flags(kv_flags({"dist.workers=2"}));
  EXPECT_FALSE(single.validate(&error));
  EXPECT_NE(error.find("dist.workers"), std::string::npos) << error;

  // A declared sweep or a runtime timeline is shardable.
  sim::ExperimentSpec sweep;
  sweep.merge_from_flags(kv_flags({"dist.workers=2", "sweep.isps=12,14"}));
  EXPECT_TRUE(sweep.validate(&error)) << error;
  sim::ExperimentSpec rt;
  rt.merge_from_flags(kv_flags({"experiment=runtime", "dist.workers=2"}));
  EXPECT_TRUE(rt.validate(&error)) << error;

  // Spawn-local and connect modes are mutually exclusive.
  sim::ExperimentSpec both;
  both.merge_from_flags(kv_flags({"dist.workers=2",
                                  "dist.connect=127.0.0.1:9000",
                                  "sweep.isps=12,14"}));
  EXPECT_FALSE(both.validate(&error));

  // Per-process obs artifacts cannot combine with distribution.
  sim::ExperimentSpec traced;
  traced.merge_from_flags(kv_flags(
      {"dist.workers=2", "sweep.isps=12,14", "obs.trace=/tmp/t.json"}));
  EXPECT_FALSE(traced.validate(&error));
  EXPECT_NE(error.find("obs.trace"), std::string::npos) << error;
  sim::ExperimentSpec timed;
  timed.merge_from_flags(
      kv_flags({"dist.workers=2", "sweep.isps=12,14", "obs.timing=true"}));
  EXPECT_FALSE(timed.validate(&error));

  // Endpoint grammar and timeout bounds.
  sim::ExperimentSpec bad_ep;
  bad_ep.merge_from_flags(
      kv_flags({"dist.connect=nocolon", "sweep.isps=12,14"}));
  EXPECT_FALSE(bad_ep.validate(&error));
  EXPECT_NE(error.find("dist.connect"), std::string::npos) << error;
  sim::ExperimentSpec zero;
  zero.merge_from_flags(kv_flags(
      {"dist.workers=2", "dist.timeout-ms=0", "sweep.isps=12,14"}));
  EXPECT_FALSE(zero.validate(&error));
}

TEST(DistSpec, KeysRoundTripThroughSerialization) {
  sim::ExperimentSpec s;
  s.merge_from_flags(kv_flags({"dist.workers=4", "dist.timeout-ms=5000",
                               "dist.retries=1", "dist.log-dir=/tmp/wl",
                               "sweep.isps=12,14"}));
  sim::ExperimentSpec reparsed;
  std::vector<std::string> lines;
  for (const auto& [key, value] : s.to_key_values())
    lines.push_back(key + "=" + value);
  reparsed.merge_from_flags(kv_flags(lines));
  EXPECT_EQ(s, reparsed);
  EXPECT_EQ(reparsed.dist.workers, 4u);
  EXPECT_EQ(reparsed.dist.timeout_ms, 5000u);
  EXPECT_EQ(reparsed.dist.retries, 1u);
  EXPECT_EQ(reparsed.dist.log_dir, "/tmp/wl");
}

TEST(ObsSnapshot, MergeFromSumsAcrossProcessShards) {
  obs::Snapshot a;
  a.counters = {{"x", 2}, {"y", 5}};
  obs::HistogramSnapshot ha;
  ha.name = "h";
  ha.count = 2;
  ha.sum = 10;
  ha.buckets.assign(obs::kHistogramBuckets, 0);
  ha.buckets[3] = 2;
  a.histograms = {ha};

  obs::Snapshot b;
  b.counters = {{"y", 1}, {"z", 7}};
  obs::HistogramSnapshot hb = ha;
  hb.count = 1;
  hb.sum = 4;
  hb.buckets[3] = 0;
  hb.buckets[5] = 1;
  b.histograms = {hb};

  a.merge_from(b);
  ASSERT_EQ(a.counters.size(), 3u);  // sorted by name after the merge
  EXPECT_EQ(a.counters[0].name, "x");
  EXPECT_EQ(a.counters[1].name, "y");
  EXPECT_EQ(a.counters[1].value, 6u);
  EXPECT_EQ(a.counters[2].value, 7u);
  ASSERT_EQ(a.histograms.size(), 1u);
  EXPECT_EQ(a.histograms[0].count, 3u);
  EXPECT_EQ(a.histograms[0].sum, 14u);
  EXPECT_EQ(a.histograms[0].buckets[3], 2u);
  EXPECT_EQ(a.histograms[0].buckets[5], 1u);
}

// --- worker serve loop ---------------------------------------------------

TEST(DistWorker, ServeRunsJobsAndRejectsBadOnesWithoutDying) {
  auto pair = agent::make_socket_channel_pair();
  dist::FramedChannel worker_side(std::move(pair.first));
  dist::FramedChannel coord_side(std::move(pair.second));
  int serve_rc = -1;
  std::thread worker([&] { serve_rc = dist::serve(worker_side); });

  auto hello = coord_side.receive(10000);
  ASSERT_TRUE(hello.has_value());
  ASSERT_TRUE(std::holds_alternative<proto::DistHello>(*hello));
  EXPECT_EQ(std::get<proto::DistHello>(*hello).protocol,
            proto::kDistProtocolVersion);

  // An unknown scenario comes back rc 2 — and the worker stays up.
  ASSERT_TRUE(
      coord_side.send(proto::DistJob{1, "nope", "", "seed=1\n"}, 10000));
  auto reply = coord_side.receive(10000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(std::holds_alternative<proto::DistResult>(*reply));
  EXPECT_EQ(std::get<proto::DistResult>(*reply).rc, 2);
  EXPECT_NE(std::get<proto::DistResult>(*reply).error.find("nope"),
            std::string::npos);

  // So does a spec with a key this build does not know.
  ASSERT_TRUE(
      coord_side.send(proto::DistJob{2, "custom", "", "bogus=1\n"}, 10000));
  reply = coord_side.receive(10000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<proto::DistResult>(*reply).rc, 2);

  // A real shard produces a digest, serialized metrics, and obs counters.
  sim::ExperimentSpec spec;
  spec.merge_from_flags(kv_flags({"isps=12", "pairs=2"}));
  ASSERT_TRUE(coord_side.send(
      proto::DistJob{3, "custom", "", spec.to_text()}, 30000));
  reply = coord_side.receive(30000);
  ASSERT_TRUE(reply.has_value());
  const auto& result = std::get<proto::DistResult>(*reply);
  EXPECT_EQ(result.job, 3u);
  EXPECT_EQ(result.rc, 0);
  EXPECT_NE(result.digest, 0u);
  EXPECT_FALSE(result.metrics.empty());
  EXPECT_FALSE(result.counters.empty());

  ASSERT_TRUE(coord_side.send(proto::DistShutdown{}, 10000));
  worker.join();
  EXPECT_EQ(serve_rc, 0);
}

// --- end-to-end bit-identity ---------------------------------------------

/// Runs the reference sweep under `extra` flags into `json_path` and
/// returns run_scenario's exit code.
int run_sweep(const std::vector<std::string>& extra,
              const std::string& json_path) {
  std::vector<std::string> flags = {"isps=12", "pairs=2", "sweep.isps=12,14",
                                    "json=" + json_path};
  flags.insert(flags.end(), extra.begin(), extra.end());
  return sim::run_scenario(*sim::find_scenario("custom"), kv_flags(flags));
}

TEST(DistRun, SweepRecordIsByteIdenticalForEveryWorkerCount) {
  if (!workerd_available()) GTEST_SKIP() << "nexit_workerd not built";
  const std::string base = temp_path("_inproc.json");
  ASSERT_EQ(run_sweep({}, base), 0);
  const std::string reference = read_file(base);
  ASSERT_NE(reference.find("\"digest\""), std::string::npos);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const std::string path =
        temp_path("_w" + std::to_string(workers) + ".json");
    ASSERT_EQ(
        run_sweep({"dist.workers=" + std::to_string(workers)}, path), 0);
    EXPECT_EQ(read_file(path), reference)
        << "record must be byte-identical at dist.workers=" << workers;
    std::remove(path.c_str());
  }
  std::remove(base.c_str());
}

TEST(DistRun, WorkerKilledMidShardStillYieldsIdenticalRecord) {
  if (!workerd_available()) GTEST_SKIP() << "nexit_workerd not built";
  const std::string base = temp_path("_inproc.json");
  ASSERT_EQ(run_sweep({}, base), 0);
  const std::string dist_path = temp_path("_killed.json");
  // Worker 0 is SIGKILLed as its first job is assigned; the coordinator
  // must detect the death and reassign without disturbing the record.
  ::setenv("NEXIT_DIST_TEST_KILL", "0:1", 1);
  const int rc = run_sweep({"dist.workers=2"}, dist_path);
  ::unsetenv("NEXIT_DIST_TEST_KILL");
  ASSERT_EQ(rc, 0);
  EXPECT_EQ(read_file(dist_path), read_file(base));
  std::remove(base.c_str());
  std::remove(dist_path.c_str());
}

TEST(DistRun, RuntimeTimelineShardsAsASingleJob) {
  if (!workerd_available()) GTEST_SKIP() << "nexit_workerd not built";
  const std::vector<std::string> base = {
      "experiment=runtime",  "isps=30",  "seed=11",
      "pairs=1",             "traffic=gravity",
      "runtime.min-links=3", "runtime.burst=2",
      "runtime.events=fail@1/0/busiest"};
  const std::string inproc = temp_path("_inproc.json");
  const std::string sharded = temp_path("_dist.json");
  std::vector<std::string> flags = base;
  flags.push_back("json=" + inproc);
  ASSERT_EQ(sim::run_scenario(*sim::find_scenario("custom"), kv_flags(flags)),
            0);
  flags.back() = "json=" + sharded;
  flags.push_back("dist.workers=1");
  ASSERT_EQ(sim::run_scenario(*sim::find_scenario("custom"), kv_flags(flags)),
            0);
  EXPECT_EQ(read_file(sharded), read_file(inproc));
  std::remove(inproc.c_str());
  std::remove(sharded.c_str());
}

TEST(DistRun, CoordinatorFailsCleanlyWhenWorkerCannotBeSpawned) {
  dist::CoordinatorConfig cfg;
  cfg.workers = 1;
  cfg.worker_path = "/nonexistent/nexit_workerd";
  cfg.timeout_ms = 3000;
  EXPECT_THROW(dist::Coordinator{cfg}, std::runtime_error);
}

}  // namespace
}  // namespace nexit
