#include <gtest/gtest.h>

#include "capacity/capacity.hpp"
#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "runtime/clock.hpp"
#include "runtime/manager.hpp"
#include "runtime/reactor.hpp"
#include "runtime/scenario.hpp"
#include "runtime/session.hpp"
#include "test_digest.hpp"
#include "test_topologies.hpp"

namespace nexit::runtime {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

// --- TimerQueue --------------------------------------------------------------

TEST(TimerQueue, FiresInDeadlineThenInsertionOrder) {
  TimerQueue q;
  q.schedule(TimerItem{5, TimerKind::kSessionDeadline, 1, {}});
  q.schedule(TimerItem{3, TimerKind::kSessionDeadline, 2, {}});
  q.schedule(TimerItem{5, TimerKind::kSessionDeadline, 3, {}});
  q.schedule(TimerItem{4, TimerKind::kSessionDeadline, 4, {}});
  EXPECT_EQ(q.next_deadline(), 3u);

  const auto early = q.expire_until(4);
  ASSERT_EQ(early.size(), 2u);
  EXPECT_EQ(early[0].session, 2u);
  EXPECT_EQ(early[1].session, 4u);

  // Equal deadlines pop in insertion order: 1 before 3.
  const auto late = q.expire_until(5);
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].session, 1u);
  EXPECT_EQ(late[1].session, 3u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_deadline(), kNoDeadline);
}

TEST(TimerQueue, ExpireUntilLeavesFutureItems) {
  TimerQueue q;
  q.schedule(TimerItem{10, TimerKind::kSessionStart, 7, {}});
  EXPECT_TRUE(q.expire_until(9).empty());
  EXPECT_EQ(q.size(), 1u);
}

// --- Reactor -----------------------------------------------------------------

TEST(Reactor, InMemoryReadinessTracksBufferedBytes) {
  Reactor r;
  auto [a, b] = agent::make_in_memory_channel_pair();
  r.watch(3, {a.get(), b.get()});
  EXPECT_TRUE(r.ready_now().empty());

  a->send({1, 2, 3});  // b now has bytes buffered
  const auto ready = r.ready_now();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 3u);

  (void)b->receive();
  EXPECT_TRUE(r.ready_now().empty());
  r.unwatch(3);
  EXPECT_EQ(r.watched(), 0u);
}

TEST(Reactor, SocketReadinessComesFromPoll) {
  Reactor r;
  auto [a, b] = agent::make_socket_channel_pair();
  r.watch(9, {a.get(), b.get()});
  EXPECT_TRUE(r.ready_now().empty());

  a->send({42});
  const auto ready = r.ready_now();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 9u);
  (void)b->receive();
}

// --- Session -----------------------------------------------------------------

struct Fixture {
  topology::IspPair pair = figure1_pair();
  routing::PairRouting routing{pair};
  std::vector<traffic::Flow> flows{
      make_flow(0, Direction::kAtoB, 1, 2), make_flow(1, Direction::kBtoA, 1, 0),
      make_flow(2, Direction::kAtoB, 0, 2), make_flow(3, Direction::kBtoA, 2, 0)};
  core::NegotiationProblem problem =
      core::make_distance_problem(routing, flows, {0, 1, 2});
  core::NegotiationConfig config = [] {
    core::NegotiationConfig c;
    c.tie_break = core::TieBreak::kDeterministic;
    return c;
  }();
};

ChannelFactory in_memory_factory() {
  return [](int) { return agent::make_in_memory_channel_pair(); };
}

TEST(Session, RunsToDoneAndMatchesEngine) {
  Fixture fx;
  core::DistanceOracle ea(0, fx.config.preferences), eb(1, fx.config.preferences);
  core::NegotiationEngine engine(fx.problem, ea, eb, fx.config);
  const auto expected = engine.run();

  core::DistanceOracle oa(0, fx.config.preferences), ob(1, fx.config.preferences);
  Session s(0, fx.problem, oa, ob, fx.config, in_memory_factory());
  EXPECT_EQ(s.status(), SessionStatus::kPending);
  s.start(0);
  EXPECT_EQ(s.status(), SessionStatus::kRunning);
  EXPECT_TRUE(s.needs_kick());
  s.pump(0);
  ASSERT_EQ(s.status(), SessionStatus::kDone) << s.error();
  EXPECT_EQ(s.outcome().assignment.ix_of_flow, expected.assignment.ix_of_flow);
  EXPECT_EQ(s.attempts(), 1);
  EXPECT_GT(s.messages_sent(), 0u);
}

TEST(Session, TotalLossFailsViaTimeoutNotHang) {
  // The FaultyChannel satellite: nonzero drop probability must end in
  // kFailed through the round timeout, never an eternal stall.
  Fixture fx;
  core::DistanceOracle oa(0, fx.config.preferences), ob(1, fx.config.preferences);
  SessionLimits limits;
  limits.handshake_deadline = 8;
  limits.round_timeout = 4;
  limits.max_attempts = 2;
  auto lossy_factory = [](int attempt)
      -> std::pair<std::unique_ptr<agent::Channel>,
                   std::unique_ptr<agent::Channel>> {
    auto [a, b] = agent::make_in_memory_channel_pair();
    return {std::make_unique<agent::FaultyChannel>(
                std::move(a), /*drop=*/1.0, 0.0, 100 + attempt),
            std::make_unique<agent::FaultyChannel>(
                std::move(b), /*drop=*/1.0, 0.0, 200 + attempt)};
  };
  Session s(0, fx.problem, oa, ob, fx.config, lossy_factory, limits);
  s.start(0);
  s.pump(0);  // handshakes sent into the void
  EXPECT_EQ(s.status(), SessionStatus::kRunning);

  // Before the deadline nothing changes; at the deadline attempt 2 begins;
  // at its deadline the session fails for good.
  s.check_deadline(7);
  EXPECT_EQ(s.status(), SessionStatus::kRunning);
  EXPECT_EQ(s.attempts(), 1);
  s.check_deadline(8);
  EXPECT_EQ(s.attempts(), 2);
  EXPECT_TRUE(s.needs_kick());
  s.pump(8);
  s.check_deadline(16);
  ASSERT_EQ(s.status(), SessionStatus::kFailed);
  EXPECT_NE(s.error().find("handshake deadline"), std::string::npos);
}

TEST(Session, RetryWithFreshChannelsRecovers) {
  // Attempt 0 gets a black-hole transport, attempt 1 a clean one: the
  // bounded-retry path must recover and still match the engine.
  Fixture fx;
  core::DistanceOracle ea(0, fx.config.preferences), eb(1, fx.config.preferences);
  core::NegotiationEngine engine(fx.problem, ea, eb, fx.config);
  const auto expected = engine.run();

  core::DistanceOracle oa(0, fx.config.preferences), ob(1, fx.config.preferences);
  SessionLimits limits;
  limits.handshake_deadline = 8;
  limits.max_attempts = 2;
  auto flaky_factory = [](int attempt)
      -> std::pair<std::unique_ptr<agent::Channel>,
                   std::unique_ptr<agent::Channel>> {
    auto [a, b] = agent::make_in_memory_channel_pair();
    if (attempt == 0) {
      return {std::make_unique<agent::FaultyChannel>(std::move(a), 1.0, 0.0, 1),
              std::make_unique<agent::FaultyChannel>(std::move(b), 1.0, 0.0, 2)};
    }
    return {std::move(a), std::move(b)};
  };
  Session s(0, fx.problem, oa, ob, fx.config, flaky_factory, limits);
  s.start(0);
  s.pump(0);
  s.check_deadline(8);  // attempt 0 times out, attempt 1 begins
  EXPECT_EQ(s.attempts(), 2);
  s.pump(8);
  ASSERT_EQ(s.status(), SessionStatus::kDone) << s.error();
  EXPECT_EQ(s.outcome().assignment.ix_of_flow, expected.assignment.ix_of_flow);
}

TEST(Session, CorruptionConsumesRetriesThenFails) {
  Fixture fx;
  core::DistanceOracle oa(0, fx.config.preferences), ob(1, fx.config.preferences);
  SessionLimits limits;
  limits.max_attempts = 3;
  auto corrupt_factory = [](int attempt)
      -> std::pair<std::unique_ptr<agent::Channel>,
                   std::unique_ptr<agent::Channel>> {
    auto [a, b] = agent::make_in_memory_channel_pair();
    return {std::make_unique<agent::FaultyChannel>(
                std::move(a), 0.0, /*corrupt=*/1.0, 10 + attempt),
            std::move(b)};
  };
  Session s(0, fx.problem, oa, ob, fx.config, corrupt_factory, limits);
  s.start(0);
  // Every attempt dies on a stream error as soon as B decodes; retries are
  // consumed synchronously inside pump (the failure is detected, not timed
  // out), so pumping drains all attempts.
  for (int i = 0; i < 10 && !s.terminal(); ++i) s.pump(static_cast<Tick>(i));
  ASSERT_EQ(s.status(), SessionStatus::kFailed);
  EXPECT_EQ(s.attempts(), 3);
  EXPECT_NE(s.error().find("stream error"), std::string::npos);
}

TEST(Session, StepBudgetExhaustionFailsWithoutRetrying) {
  // The max_steps budget is global across attempts; burning it must not
  // spawn doomed fresh attempts.
  Fixture fx;
  core::DistanceOracle oa(0, fx.config.preferences), ob(1, fx.config.preferences);
  SessionLimits limits;
  limits.max_steps = 2;  // far below what any negotiation needs
  Session s(0, fx.problem, oa, ob, fx.config, in_memory_factory(), limits);
  s.start(0);
  s.pump(0);
  while (!s.terminal()) s.pump(1);
  EXPECT_EQ(s.status(), SessionStatus::kFailed);
  EXPECT_EQ(s.attempts(), 1);
  EXPECT_NE(s.error().find("step budget"), std::string::npos);
}

TEST(Session, CancelAndRestartLifecycle) {
  Fixture fx;
  core::DistanceOracle oa(0, fx.config.preferences), ob(1, fx.config.preferences);
  Session s(1, fx.problem, oa, ob, fx.config, in_memory_factory());
  s.start(0);
  s.restart(3);  // planned restart does not consume a retry
  EXPECT_EQ(s.attempts(), 2);
  EXPECT_EQ(s.status(), SessionStatus::kRunning);
  s.cancel(4, "scenario says so");
  EXPECT_EQ(s.status(), SessionStatus::kCancelled);
  EXPECT_EQ(s.error(), "scenario says so");
  s.restart(5);  // no-op once terminal
  EXPECT_EQ(s.status(), SessionStatus::kCancelled);
}

// --- SessionManager ----------------------------------------------------------

TEST(SessionManager, DrivesManySessionsOverBothTransports) {
  Fixture fx;
  core::DistanceOracle ea(0, fx.config.preferences), eb(1, fx.config.preferences);
  core::NegotiationEngine engine(fx.problem, ea, eb, fx.config);
  const auto expected = engine.run();

  constexpr std::size_t kSessions = 16;
  std::vector<std::unique_ptr<core::DistanceOracle>> oracles;
  SessionManager mgr(RuntimeConfig{});
  for (std::size_t i = 0; i < kSessions; ++i) {
    auto& oa = *oracles.emplace_back(
        std::make_unique<core::DistanceOracle>(0, fx.config.preferences));
    auto& ob = *oracles.emplace_back(
        std::make_unique<core::DistanceOracle>(1, fx.config.preferences));
    ChannelFactory factory =
        i % 2 == 0 ? in_memory_factory()
                   : ChannelFactory([](int) {
                       return agent::make_socket_channel_pair();
                     });
    mgr.add(std::make_unique<Session>(static_cast<std::uint32_t>(i), fx.problem,
                                      oa, ob, fx.config, std::move(factory)),
            /*start_at=*/i);  // staggered
  }
  const RuntimeStats stats = mgr.run();
  EXPECT_EQ(stats.sessions, kSessions);
  EXPECT_EQ(stats.done, kSessions);
  EXPECT_EQ(stats.failed, 0u);
  for (std::size_t i = 0; i < kSessions; ++i) {
    const Session& s = mgr.session(static_cast<std::uint32_t>(i));
    ASSERT_EQ(s.status(), SessionStatus::kDone) << i << ": " << s.error();
    EXPECT_EQ(s.outcome().assignment.ix_of_flow, expected.assignment.ix_of_flow);
    EXPECT_GE(s.started_at(), static_cast<Tick>(i));  // stagger respected
  }
}

TEST(SessionManager, TimedCallbackFiresOnSchedule) {
  SessionManager mgr(RuntimeConfig{});
  Fixture fx;
  core::DistanceOracle oa(0, fx.config.preferences), ob(1, fx.config.preferences);
  mgr.add(std::make_unique<Session>(0, fx.problem, oa, ob, fx.config,
                                    in_memory_factory()),
          /*start_at=*/0);
  Tick fired_at = 0;
  mgr.at(5, [&](Tick now) { fired_at = now; });
  mgr.run();
  EXPECT_GE(fired_at, 5u);
}

// --- Scenario ----------------------------------------------------------------

ScenarioConfig small_scenario() {
  ScenarioConfig cfg;
  cfg.universe.isp_count = 20;
  cfg.universe.seed = 5;
  cfg.universe.max_pairs = 8;
  cfg.min_links = 2;
  cfg.seed = 11;
  return cfg;
}

TEST(Scenario, OutcomesBitIdenticalAcrossThreadCounts) {
  ScenarioConfig cfg = small_scenario();
  cfg.session_count = 24;  // cycles the 8 pairs with per-session traffic
  cfg.runtime.threads = 1;
  const ScenarioReport serial = run_scenario(cfg);
  cfg.runtime.threads = 4;
  const ScenarioReport parallel = run_scenario(cfg);

  ASSERT_EQ(serial.sessions.size(), 24u);
  for (const auto& s : serial.sessions)
    ASSERT_EQ(s.status, SessionStatus::kDone) << s.error;
  testing::expect_reports_equal(serial, parallel);
}

TEST(Scenario, SessionsOnSamePairDifferByTraffic) {
  // Synthetic scale-up must not clone negotiations: sessions cycling the
  // same pair get distinct pre-forked traffic streams.
  ScenarioConfig cfg = small_scenario();
  cfg.universe.max_pairs = 2;
  cfg.session_count = 4;
  cfg.traffic = ScenarioTraffic::kBidirectionalUniformRandom;
  Scenario scenario(cfg);
  const ScenarioReport report = scenario.run();
  ASSERT_EQ(report.sessions.size(), 4u);
  EXPECT_EQ(report.sessions[0].pair_label, report.sessions[2].pair_label);
  const auto& f0 = scenario.world_of(0).traffic.flows();
  const auto& f2 = scenario.world_of(2).traffic.flows();
  ASSERT_EQ(f0.size(), f2.size());
  bool any_size_differs = false;
  for (std::size_t i = 0; i < f0.size(); ++i)
    any_size_differs = any_size_differs || f0[i].size != f2[i].size;
  EXPECT_TRUE(any_size_differs);
}

TEST(Scenario, PeerRestartStillConvergesToSameOutcome) {
  ScenarioConfig cfg = small_scenario();
  cfg.universe.max_pairs = 1;
  cfg.start_stagger = 0;
  const ScenarioReport plain = run_scenario(cfg);
  ASSERT_EQ(plain.sessions.size(), 1u);
  ASSERT_EQ(plain.sessions[0].status, SessionStatus::kDone);

  cfg.events.push_back(ScenarioEvent{0, EventKind::kPeerRestart, 0, 0});
  const ScenarioReport restarted = run_scenario(cfg);
  ASSERT_EQ(restarted.sessions[0].status, SessionStatus::kDone)
      << restarted.sessions[0].error;
  EXPECT_EQ(restarted.sessions[0].outcome.assignment.ix_of_flow,
            plain.sessions[0].outcome.assignment.ix_of_flow);
  EXPECT_GE(restarted.sessions[0].attempts, 1);
}

TEST(Scenario, FlowChurnSpawnsRenegotiation) {
  ScenarioConfig cfg = small_scenario();
  cfg.universe.max_pairs = 2;
  cfg.start_stagger = 50;  // session 1 still pending when churn hits it
  cfg.events.push_back(ScenarioEvent{10, EventKind::kFlowChurn, 1, 999});
  const ScenarioReport report = run_scenario(cfg);
  ASSERT_EQ(report.sessions.size(), 3u);
  EXPECT_EQ(report.sessions[1].status, SessionStatus::kCancelled);
  const auto& reneg = report.sessions[2];
  EXPECT_EQ(reneg.kind, SessionKind::kChurnRenegotiation);
  EXPECT_EQ(reneg.parent, 1);
  ASSERT_EQ(reneg.status, SessionStatus::kDone) << reneg.error;
  EXPECT_GT(reneg.outcome.flows_negotiated, 0u);
}

TEST(Scenario, LinkFailureReproducesFailureNegotiationExample) {
  // The acceptance scenario: a link fails mid-session, the affected flows
  // renegotiate over the survivors with bandwidth oracles — and the result
  // must equal the in-process engine run of examples/failure_negotiation.cpp
  // on the identical problem (the example's world-building recipe is the
  // scenario's own: early-exit pre-failure routing, capacities from
  // pre-failure loads, busiest interconnection failed).
  ScenarioConfig cfg;
  cfg.universe.isp_count = 30;
  cfg.universe.seed = 11;  // the example's default --seed
  cfg.universe.max_pairs = 1;
  cfg.min_links = 3;
  cfg.traffic = ScenarioTraffic::kGravityAtoB;  // the example's workload
  cfg.negotiation.reassign_traffic_fraction = 0.05;
  cfg.limits.max_steps_per_pump = 2;  // yield every two pump steps...
  cfg.events.push_back(
      ScenarioEvent{1, EventKind::kLinkFailure, 0, kBusiestIx});
  // ...so the tick-1 failure lands while session 0 is genuinely
  // mid-negotiation (asserted below via kCancelled).

  Scenario scenario(cfg);
  const ScenarioReport report = scenario.run();
  ASSERT_EQ(report.sessions.size(), 2u);
  EXPECT_EQ(report.sessions[0].status, SessionStatus::kCancelled);
  const auto& reneg = report.sessions[1];
  ASSERT_EQ(reneg.kind, SessionKind::kFailureRenegotiation);
  ASSERT_EQ(reneg.status, SessionStatus::kDone) << reneg.error;

  // Reference: the example's computation — NegotiationEngine on the same
  // failure problem with bandwidth oracles and deterministic tie-breaks.
  const SessionWorld& world = scenario.world_of(1);
  core::NegotiationConfig ncfg;
  ncfg.tie_break = core::TieBreak::kDeterministic;
  ncfg.reassign_traffic_fraction = 0.05;
  core::BandwidthOracle ea(0, ncfg.preferences, world.capacities);
  core::BandwidthOracle eb(1, ncfg.preferences, world.capacities);
  core::NegotiationEngine engine(world.problem, ea, eb, ncfg);
  const auto expected = engine.run();

  EXPECT_EQ(reneg.outcome.assignment.ix_of_flow,
            expected.assignment.ix_of_flow);
  EXPECT_EQ(reneg.outcome.flows_moved, expected.flows_moved);
  EXPECT_EQ(reneg.outcome.reassignments, expected.reassignments);
  // No renegotiated flow still uses the failed interconnection.
  for (std::size_t idx : world.problem.negotiable)
    EXPECT_NE(reneg.outcome.assignment.ix_of_flow[idx], world.failed_ix);
}

TEST(Scenario, FaultySessionsFailCleanlyAmongHealthyOnes) {
  // Mixed population: healthy sessions complete, a black-hole session fails
  // by timeout, and the whole run terminates (nothing spins forever).
  ScenarioConfig cfg = small_scenario();
  cfg.universe.max_pairs = 3;
  cfg.session_count = 3;
  cfg.faults.drop = 1.0;  // applied to every initial session
  cfg.limits.handshake_deadline = 8;
  cfg.limits.max_attempts = 2;
  const ScenarioReport all_lossy = run_scenario(cfg);
  for (const auto& s : all_lossy.sessions) {
    EXPECT_EQ(s.status, SessionStatus::kFailed);
    EXPECT_EQ(s.attempts, 2);
  }
  EXPECT_LE(all_lossy.stats.final_tick, 64u);

  // Targeted faults: only session 1's transport is lossy; its neighbours
  // must be untouched.
  cfg.fault_targets = {1};
  const ScenarioReport targeted = run_scenario(cfg);
  EXPECT_EQ(targeted.sessions[0].status, SessionStatus::kDone);
  EXPECT_EQ(targeted.sessions[1].status, SessionStatus::kFailed);
  EXPECT_EQ(targeted.sessions[2].status, SessionStatus::kDone);
  EXPECT_EQ(targeted.stats.failed, 1u);

  // A fault target that can never exist is a config bug, not a silent
  // no-fault run.
  cfg.fault_targets = {99};
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nexit::runtime
