#pragma once

// Shared spellings of "these two runs are the same run" for the test
// suites. Scenario-outcome comparison used to be hand-rolled per file
// (runtime_test, dist_test, sweep_test each had their own kv_flags /
// temp-file / digest-extraction helpers and per-field loops); the
// durability tests compare whole reports so often that the helpers live
// here once, and a divergence names the session and field that moved.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/scenario.hpp"
#include "util/flags.hpp"

namespace nexit::testing {

/// Spec-style key=value assignments as a Flags object (the way every
/// suite drives ExperimentSpec::merge_from_flags).
inline util::Flags kv_flags(const std::vector<std::string>& assignments) {
  return util::Flags(assignments);
}

/// A per-test temp path: gtest's temp dir + suite + test name + suffix,
/// so concurrently running suites never collide on artifacts.
inline std::string temp_path(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" + info->name() +
         suffix;
}

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The hex outcome digest a run_scenario --json record carries. The
/// top-level digest is recorded after any per-point sections, so the last
/// occurrence is the run's overall digest.
inline std::string digest_in(const std::string& json_path) {
  const std::string text = read_file(json_path);
  const std::string needle = "\"digest\": \"";
  const auto pos = text.rfind(needle);
  return pos == std::string::npos ? "" : text.substr(pos + needle.size(), 16);
}

/// Full-field equality of two scenario reports: every per-session counter,
/// tick, and outcome must match — the "bit-identical" contract spelled
/// field by field instead of through the digest, so a divergence points at
/// the session and field that moved rather than at a hash.
inline void expect_reports_equal(const runtime::ScenarioReport& a,
                                 const runtime::ScenarioReport& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const runtime::ScenarioSessionResult& x = a.sessions[i];
    const runtime::ScenarioSessionResult& y = b.sessions[i];
    EXPECT_EQ(x.id, y.id) << "session " << i;
    EXPECT_EQ(x.kind, y.kind) << "session " << i;
    EXPECT_EQ(x.parent, y.parent) << "session " << i;
    EXPECT_EQ(x.pair_label, y.pair_label) << "session " << i;
    EXPECT_EQ(x.status, y.status) << "session " << i;
    EXPECT_EQ(x.error, y.error) << "session " << i;
    EXPECT_EQ(x.attempts, y.attempts) << "session " << i;
    EXPECT_EQ(x.retries, y.retries) << "session " << i;
    EXPECT_EQ(x.steps, y.steps) << "session " << i;
    EXPECT_EQ(x.messages, y.messages) << "session " << i;
    EXPECT_EQ(x.timeouts, y.timeouts) << "session " << i;
    EXPECT_EQ(x.started_at, y.started_at) << "session " << i;
    EXPECT_EQ(x.finished_at, y.finished_at) << "session " << i;
    if (x.status == runtime::SessionStatus::kDone &&
        y.status == runtime::SessionStatus::kDone) {
      EXPECT_EQ(x.outcome.assignment.ix_of_flow, y.outcome.assignment.ix_of_flow)
          << "session " << i;
      EXPECT_EQ(x.outcome.rounds, y.outcome.rounds) << "session " << i;
      EXPECT_EQ(x.outcome.stop_reason, y.outcome.stop_reason)
          << "session " << i;
      EXPECT_EQ(x.outcome.true_gain_a, y.outcome.true_gain_a)
          << "session " << i;
      EXPECT_EQ(x.outcome.disclosed_gain_a, y.outcome.disclosed_gain_a)
          << "session " << i;
      EXPECT_EQ(x.outcome.disclosed_gain_b, y.outcome.disclosed_gain_b)
          << "session " << i;
    }
  }
  EXPECT_EQ(runtime::outcome_digest(a), runtime::outcome_digest(b));
}

}  // namespace nexit::testing
