#include <gtest/gtest.h>

#include <iostream>

#include "sim/bandwidth_experiment.hpp"
#include "sim/distance_experiment.hpp"
#include "sim/pair_universe.hpp"
#include "util/stats.hpp"

namespace nexit::sim {
namespace {

UniverseConfig small_universe(std::uint64_t seed) {
  UniverseConfig u;
  u.isp_count = 18;
  u.seed = seed;
  u.max_pairs = 12;
  return u;
}

TEST(PairUniverse, DeterministicAndCapped) {
  auto a = build_pair_universe(small_universe(7), 2);
  auto b = build_pair_universe(small_universe(7), 2);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_LE(a.size(), 12u);
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label(), b[i].label());
    EXPECT_GE(a[i].interconnection_count(), 2u);
  }
}

TEST(PairUniverse, MinLinksRespected) {
  for (const auto& p : build_pair_universe(small_universe(9), 3))
    EXPECT_GE(p.interconnection_count(), 3u);
}

class DistanceInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistanceInvariants, HoldOnSmallUniverse) {
  DistanceExperimentConfig cfg;
  cfg.universe = small_universe(GetParam());
  auto samples = run_distance_experiment(cfg);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    // Optimal is per-flow argmin: no method can beat it.
    EXPECT_LE(s.optimal_km, s.default_km + 1e-6);
    EXPECT_LE(s.optimal_km, s.negotiated_km + 1e-6);
    // Negotiation never loses versus default in total...
    EXPECT_LE(s.negotiated_km, s.default_km + 1e-6);
    // ...and no individual ISP ends more than marginally below its default
    // (preference class 0 absorbs swings below one quantisation step).
    for (int side = 0; side < 2; ++side) {
      EXPECT_GE(s.side_gain_pct(s.negotiated_side_km, side), -0.75)
          << s.pair_label << " side " << side;
    }
    // Fig. 5 baselines never beat the optimal.
    EXPECT_LE(s.optimal_km, s.pareto_km + 1e-6);
    EXPECT_LE(s.optimal_km, s.bothbetter_km + 1e-6);
    EXPECT_EQ(s.flow_gain_pct_optimal.size(), s.flow_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceInvariants,
                         ::testing::Values(11, 22, 33));

TEST(DistanceExperiment, NegotiationTracksOptimalClosely) {
  DistanceExperimentConfig cfg;
  cfg.universe = small_universe(5);
  auto samples = run_distance_experiment(cfg);
  ASSERT_FALSE(samples.empty());
  std::vector<double> opt_gain, neg_gain;
  for (const auto& s : samples) {
    opt_gain.push_back(s.total_gain_pct(s.optimal_km));
    neg_gain.push_back(s.total_gain_pct(s.negotiated_km));
  }
  const double mo = util::median(opt_gain);
  const double mn = util::median(neg_gain);
  std::cout << "[ shape ] median total gain: optimal " << mo << "%, negotiated "
            << mn << "%\n";
  // The headline result: negotiated is close to optimal (within a couple of
  // percentage points of total distance at the median).
  EXPECT_GE(mn, 0.0);
  EXPECT_GE(mn, mo - 2.5);
}

TEST(DistanceExperiment, CheatingReducesBothGains) {
  DistanceExperimentConfig honest;
  honest.universe = small_universe(77);
  DistanceExperimentConfig cheat = honest;
  cheat.objective[0].cheat = true;
  auto hs = run_distance_experiment(honest);
  auto cs = run_distance_experiment(cheat);
  ASSERT_EQ(hs.size(), cs.size());
  double honest_total = 0.0, cheat_total = 0.0;
  for (std::size_t i = 0; i < hs.size(); ++i) {
    honest_total += hs[i].total_gain_pct(hs[i].negotiated_km);
    cheat_total += cs[i].total_gain_pct(cs[i].negotiated_km);
  }
  std::cout << "[ shape ] mean total gain: honest " << honest_total / hs.size()
            << "%, one cheater " << cheat_total / cs.size() << "%\n";
  EXPECT_LT(cheat_total, honest_total);
  // The truthful ISP must never end below its default even against a liar.
  for (const auto& s : cs) {
    EXPECT_GE(s.side_gain_pct(s.negotiated_side_km, 1), -0.75) << s.pair_label;
  }
}

TEST(DistanceExperiment, GroupNegotiationLosesGain) {
  DistanceExperimentConfig whole;
  whole.universe = small_universe(31);
  DistanceExperimentConfig grouped = whole;
  grouped.groups = 8;
  auto ws = run_distance_experiment(whole);
  auto gs = run_distance_experiment(grouped);
  ASSERT_EQ(ws.size(), gs.size());
  double whole_gain = 0.0, group_gain = 0.0;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    whole_gain += ws[i].total_gain_pct(ws[i].negotiated_km);
    group_gain += gs[i].total_gain_pct(gs[i].negotiated_km);
  }
  std::cout << "[ shape ] mean gain whole-set " << whole_gain / ws.size()
            << "% vs 8 groups " << group_gain / gs.size() << "%\n";
  EXPECT_LE(group_gain, whole_gain + 1e-9);
}

class BandwidthInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthInvariants, HoldOnSmallUniverse) {
  BandwidthExperimentConfig cfg;
  cfg.universe = small_universe(GetParam());
  cfg.universe.max_pairs = 4;
  cfg.negotiation.reassign_traffic_fraction = 0.05;
  auto samples = run_bandwidth_experiment(cfg);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    // The fractional LP lower-bounds every integral routing, side-wise max.
    const double opt_total = std::max(s.mel_optimal[0], s.mel_optimal[1]);
    const double def_total = std::max(s.mel_default[0], s.mel_default[1]);
    const double neg_total = std::max(s.mel_negotiated[0], s.mel_negotiated[1]);
    EXPECT_GE(def_total, opt_total - 1e-6) << s.pair_label;
    EXPECT_GE(neg_total, opt_total - 1e-6) << s.pair_label;
    EXPECT_GT(s.affected_flows, 0u);
    EXPECT_GT(s.affected_volume_fraction, 0.0);
    EXPECT_LE(s.affected_volume_fraction, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthInvariants, ::testing::Values(3, 13));

TEST(BandwidthExperiment, NegotiationControlsOverload) {
  BandwidthExperimentConfig cfg;
  cfg.universe = small_universe(101);
  cfg.universe.isp_count = 24;
  cfg.universe.max_pairs = 8;
  cfg.negotiation.reassign_traffic_fraction = 0.05;
  auto samples = run_bandwidth_experiment(cfg);
  ASSERT_GE(samples.size(), 4u);
  std::vector<double> def_ratio_up, neg_ratio_up;
  for (const auto& s : samples) {
    def_ratio_up.push_back(s.ratio(s.mel_default, 0));
    neg_ratio_up.push_back(s.ratio(s.mel_negotiated, 0));
  }
  const double md = util::median(def_ratio_up);
  const double mn = util::median(neg_ratio_up);
  std::cout << "[ shape ] upstream MEL/optimal: default median " << md
            << ", negotiated median " << mn << " (n=" << samples.size() << ")\n";
  // Negotiated routing should sit well below default and near the optimal.
  EXPECT_LE(mn, md + 1e-9);
  EXPECT_LE(mn, 1.8);
  EXPECT_GE(mn, 1.0 - 1e-6);
}

TEST(BandwidthExperiment, DiverseCriteriaFillsDistanceGain) {
  BandwidthExperimentConfig cfg;
  cfg.universe = small_universe(55);
  cfg.universe.max_pairs = 4;
  cfg.objective[1] = {"distance", false};
  cfg.include_unilateral = false;
  cfg.negotiation.reassign_traffic_fraction = 0.05;
  auto samples = run_bandwidth_experiment(cfg);
  ASSERT_FALSE(samples.empty());
  bool any_distance_gain = false;
  for (const auto& s : samples) {
    EXPECT_GE(s.downstream_distance_gain_pct, -0.75);
    any_distance_gain |= s.downstream_distance_gain_pct > 1.0;
  }
  EXPECT_TRUE(any_distance_gain);
}

TEST(BandwidthExperiment, DeterministicGivenSeed) {
  BandwidthExperimentConfig cfg;
  cfg.universe = small_universe(8);
  cfg.universe.max_pairs = 3;
  cfg.negotiation.reassign_traffic_fraction = 0.05;
  auto a = run_bandwidth_experiment(cfg);
  auto b = run_bandwidth_experiment(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pair_label, b[i].pair_label);
    EXPECT_DOUBLE_EQ(a[i].mel_negotiated[0], b[i].mel_negotiated[0]);
    EXPECT_DOUBLE_EQ(a[i].mel_optimal[1], b[i].mel_optimal[1]);
  }
}

}  // namespace
}  // namespace nexit::sim
