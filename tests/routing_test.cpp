#include <gtest/gtest.h>

#include "routing/loads.hpp"
#include "routing/pair_routing.hpp"
#include "test_topologies.hpp"

namespace nexit::routing {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

const std::vector<std::size_t> kAll{0, 1, 2};

TEST(PairRouting, DistancesInsideEachIsp) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  // Flow a0 -> b2.
  auto f = make_flow(0, Direction::kAtoB, 0, 2);
  EXPECT_DOUBLE_EQ(r.upstream_km(f, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.upstream_km(f, 1), 100.0);
  EXPECT_DOUBLE_EQ(r.upstream_km(f, 2), 200.0);
  EXPECT_DOUBLE_EQ(r.downstream_km(f, 0), 400.0);  // b0->b2 via the detour
  EXPECT_DOUBLE_EQ(r.downstream_km(f, 1), 300.0);
  EXPECT_DOUBLE_EQ(r.downstream_km(f, 2), 0.0);
  EXPECT_DOUBLE_EQ(r.total_km(f, 0), 400.0);
  EXPECT_DOUBLE_EQ(r.total_km(f, 2), 200.0);
}

TEST(PairRouting, KmInSideMatchesUpDown) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  auto f = make_flow(0, Direction::kBtoA, 2, 0);  // b2 -> a0
  EXPECT_DOUBLE_EQ(r.km_in_side(f, 0, 1), r.upstream_km(f, 0));
  EXPECT_DOUBLE_EQ(r.km_in_side(f, 0, 0), r.downstream_km(f, 0));
  EXPECT_THROW((void)r.km_in_side(f, 0, 2), std::invalid_argument);
}

TEST(PairRouting, EarlyExitPicksNearestToSource) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  EXPECT_EQ(r.early_exit(make_flow(0, Direction::kAtoB, 0, 2), kAll), 0u);
  EXPECT_EQ(r.early_exit(make_flow(0, Direction::kAtoB, 1, 2), kAll), 1u);
  EXPECT_EQ(r.early_exit(make_flow(0, Direction::kAtoB, 2, 0), kAll), 2u);
  // Restricted candidates: nearest up interconnection.
  EXPECT_EQ(r.early_exit(make_flow(0, Direction::kAtoB, 0, 2), {1, 2}), 1u);
}

TEST(PairRouting, LateExitPicksNearestToDestination) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  EXPECT_EQ(r.late_exit(make_flow(0, Direction::kAtoB, 0, 2), kAll), 2u);
  EXPECT_EQ(r.late_exit(make_flow(0, Direction::kAtoB, 0, 0), kAll), 0u);
}

TEST(PairRouting, MinTotalKmExit) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  // a0 -> b2: totals are 400 (ix0), 400 (ix1), 200 (ix2).
  EXPECT_EQ(r.min_total_km_exit(make_flow(0, Direction::kAtoB, 0, 2), kAll), 2u);
  // a0 -> b0: totals are 0, 200, 600.
  EXPECT_EQ(r.min_total_km_exit(make_flow(0, Direction::kAtoB, 0, 0), kAll), 0u);
}

TEST(PairRouting, EmptyCandidatesThrow) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  EXPECT_THROW((void)r.early_exit(make_flow(0, Direction::kAtoB, 0, 0), {}),
               std::invalid_argument);
}

TEST(PairRouting, ReverseDirectionUsesBSideAsUpstream) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  auto f = make_flow(0, Direction::kBtoA, 2, 0);  // src b2, dst a0
  EXPECT_DOUBLE_EQ(r.upstream_km(f, 2), 0.0);
  EXPECT_DOUBLE_EQ(r.upstream_km(f, 0), 400.0);
  EXPECT_DOUBLE_EQ(r.downstream_km(f, 2), 200.0);
  EXPECT_EQ(r.early_exit(f, kAll), 2u);
}

TEST(PairRouting, PathEdgesMatchDistances) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  auto f = make_flow(0, Direction::kAtoB, 0, 2);
  // Upstream path to ix2 crosses both A edges.
  auto up = r.upstream_path_edges(f, 2);
  EXPECT_EQ(up.size(), 2u);
  // Downstream path from ix0 to b2 crosses both B edges.
  auto down = r.downstream_path_edges(f, 0);
  EXPECT_EQ(down.size(), 2u);
  // Via ix2 the downstream path is empty (dst == entry PoP).
  EXPECT_TRUE(r.downstream_path_edges(f, 2).empty());
}

TEST(Assignments, PolicyAssignmentsPerFlow) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2),
                                   make_flow(1, Direction::kAtoB, 2, 0)};
  auto early = assign_early_exit(r, flows, kAll);
  EXPECT_EQ(early.ix_of_flow, (std::vector<std::size_t>{0, 2}));
  auto late = assign_late_exit(r, flows, kAll);
  EXPECT_EQ(late.ix_of_flow, (std::vector<std::size_t>{2, 0}));
  auto opt = assign_min_total_km(r, flows, kAll);
  EXPECT_EQ(opt.ix_of_flow, (std::vector<std::size_t>{2, 0}));
}

TEST(Loads, SingleFlowLoad) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 5.0)};
  Assignment a{{0}};  // via ix0: no A edges, both B edges
  LoadMap loads = compute_loads(r, flows, a);
  EXPECT_DOUBLE_EQ(loads.per_side[0][0], 0.0);
  EXPECT_DOUBLE_EQ(loads.per_side[0][1], 0.0);
  EXPECT_DOUBLE_EQ(loads.per_side[1][0], 5.0);
  EXPECT_DOUBLE_EQ(loads.per_side[1][1], 5.0);
}

TEST(Loads, AddAndRemoveFlowIsZeroSum) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  auto f = make_flow(0, Direction::kAtoB, 0, 2, 3.0);
  LoadMap loads = LoadMap::zeros(pair);
  add_flow_load(loads, r, f, 1, 1.0);
  add_flow_load(loads, r, f, 1, -1.0);
  for (int s = 0; s < 2; ++s)
    for (double v : loads.per_side[s]) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Loads, FractionalSplitsAcrossInterconnections) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 10.0)};
  FractionalAssignment fa;
  fa.shares_of_flow = {{{0, 0.5}, {2, 0.5}}};
  LoadMap loads = compute_loads_fractional(r, flows, fa);
  // Half via ix0 (B edges), half via ix2 (A edges).
  EXPECT_DOUBLE_EQ(loads.per_side[0][0], 5.0);
  EXPECT_DOUBLE_EQ(loads.per_side[0][1], 5.0);
  EXPECT_DOUBLE_EQ(loads.per_side[1][0], 5.0);
  EXPECT_DOUBLE_EQ(loads.per_side[1][1], 5.0);
}

TEST(Loads, MismatchedSizesThrow) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2)};
  EXPECT_THROW(compute_loads(r, flows, Assignment{{0, 1}}), std::invalid_argument);
  LoadMap a = LoadMap::zeros(pair);
  LoadMap b;
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Loads, AddFlowLoadRejectsMismatchedShape) {
  // The hot loop indexes unchecked after a single up-front shape check, so
  // a wrong-shaped LoadMap must be rejected before any accumulation.
  auto pair = figure1_pair();
  PairRouting r(pair);
  const auto f = make_flow(0, Direction::kAtoB, 0, 2);
  LoadMap short_side = LoadMap::zeros(pair);
  short_side.per_side[1].pop_back();
  EXPECT_THROW(add_flow_load(short_side, r, f, 0, 1.0), std::invalid_argument);
  LoadMap empty;
  EXPECT_THROW(add_flow_load(empty, r, f, 0, 1.0), std::invalid_argument);
  // A correctly shaped map still accumulates (behaviour pin).
  LoadMap ok = LoadMap::zeros(pair);
  add_flow_load(ok, r, f, 0, 1.0);
  EXPECT_DOUBLE_EQ(ok.per_side[1][0], 1.0);
}

TEST(PairRouting, PathEdgesAreCachedReferences) {
  auto pair = figure1_pair();
  PairRouting r(pair);
  const auto f = make_flow(0, Direction::kAtoB, 0, 2);
  // Repeated queries return the same cached vector, not fresh copies.
  const auto& first = r.upstream_path_edges(f, 2);
  const auto& second = r.upstream_path_edges(f, 2);
  EXPECT_EQ(&first, &second);
  // Out-of-range interconnections still throw (pre-cache behaviour).
  EXPECT_THROW((void)r.upstream_path_edges(f, 99), std::out_of_range);
}

TEST(Loads, PlusEqualsAccumulates) {
  auto pair = figure1_pair();
  LoadMap a = LoadMap::zeros(pair);
  LoadMap b = LoadMap::zeros(pair);
  a.per_side[0][0] = 1.0;
  b.per_side[0][0] = 2.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.per_side[0][0], 3.0);
}

}  // namespace
}  // namespace nexit::routing
