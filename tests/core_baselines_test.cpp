#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "metrics/metrics.hpp"
#include "test_topologies.hpp"

namespace nexit::core {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

const std::vector<std::size_t> kAll{0, 1, 2};

struct Fixture {
  topology::IspPair pair = figure1_pair();
  routing::PairRouting routing{pair};
  // Opposite-direction pair between a0 and b2 plus an unpaired flow.
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2),
                                   make_flow(1, Direction::kBtoA, 2, 0),
                                   make_flow(2, Direction::kAtoB, 1, 1)};
  routing::Assignment defaults{routing::assign_early_exit(routing, flows, kAll)};
};

TEST(FlowPairBaselines, BothBetterNeverHurtsEitherIsp) {
  Fixture fx;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    auto a = flow_pair_strategy(fx.routing, fx.flows, kAll, fx.defaults,
                                FlowPairStrategy::kFlowBothBetter, rng);
    for (int side = 0; side < 2; ++side) {
      EXPECT_LE(metrics::side_flow_km(fx.routing, fx.flows, a, side),
                metrics::side_flow_km(fx.routing, fx.flows, fx.defaults, side) +
                    1e-9)
          << "seed " << seed << " side " << side;
    }
  }
}

TEST(FlowPairBaselines, ParetoNeverWorseForBoth) {
  Fixture fx;
  // km of the paired flows inside each ISP under default.
  auto pair_km = [&](const routing::Assignment& a, int side) {
    return fx.flows[0].size * fx.routing.km_in_side(fx.flows[0], a.ix_of_flow[0], side) +
           fx.flows[1].size * fx.routing.km_in_side(fx.flows[1], a.ix_of_flow[1], side);
  };
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    auto a = flow_pair_strategy(fx.routing, fx.flows, kAll, fx.defaults,
                                FlowPairStrategy::kFlowPareto, rng);
    const bool worse_a = pair_km(a, 0) > pair_km(fx.defaults, 0) + 1e-9;
    const bool worse_b = pair_km(a, 1) > pair_km(fx.defaults, 1) + 1e-9;
    EXPECT_FALSE(worse_a && worse_b) << "seed " << seed;
  }
}

TEST(FlowPairBaselines, UnpairedFlowsKeepDefault) {
  Fixture fx;
  util::Rng rng(3);
  auto a = flow_pair_strategy(fx.routing, fx.flows, kAll, fx.defaults,
                              FlowPairStrategy::kFlowPareto, rng);
  EXPECT_EQ(a.ix_of_flow[2], fx.defaults.ix_of_flow[2]);
}

TEST(FlowPairBaselines, DeterministicGivenSeed) {
  Fixture fx;
  util::Rng r1(42), r2(42);
  auto a1 = flow_pair_strategy(fx.routing, fx.flows, kAll, fx.defaults,
                               FlowPairStrategy::kFlowPareto, r1);
  auto a2 = flow_pair_strategy(fx.routing, fx.flows, kAll, fx.defaults,
                               FlowPairStrategy::kFlowPareto, r2);
  EXPECT_EQ(a1.ix_of_flow, a2.ix_of_flow);
}

TEST(FlowPairBaselines, InputValidation) {
  Fixture fx;
  util::Rng rng(1);
  EXPECT_THROW(flow_pair_strategy(fx.routing, fx.flows, {}, fx.defaults,
                                  FlowPairStrategy::kFlowPareto, rng),
               std::invalid_argument);
  routing::Assignment bad{{0}};
  EXPECT_THROW(flow_pair_strategy(fx.routing, fx.flows, kAll, bad,
                                  FlowPairStrategy::kFlowPareto, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace nexit::core
