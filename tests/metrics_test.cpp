#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "test_topologies.hpp"

namespace nexit::metrics {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

TEST(Distance, TotalAndPerSide) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2),
                                   make_flow(1, Direction::kBtoA, 0, 1)};
  // Flow 0 via ix1: 100 in A + 300 in B = 400.
  // Flow 1 (b0 -> a1) via ix0: 0 in B + 100 in A.
  routing::Assignment a{{1, 0}};
  EXPECT_DOUBLE_EQ(total_flow_km(r, flows, a), 500.0);
  EXPECT_DOUBLE_EQ(side_flow_km(r, flows, a, 0), 200.0);  // inside A
  EXPECT_DOUBLE_EQ(side_flow_km(r, flows, a, 1), 300.0);  // inside B
}

TEST(Distance, SizeWeighted) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 2.0)};
  routing::Assignment a{{2}};
  EXPECT_DOUBLE_EQ(total_flow_km(r, flows, a), 2.0 * 200.0);
}

TEST(Mel, MaxRatio) {
  EXPECT_DOUBLE_EQ(mel({10, 20}, {10, 10}), 2.0);
  EXPECT_DOUBLE_EQ(mel({0, 0}, {1, 1}), 0.0);
  EXPECT_THROW(mel({1}, {0}), std::invalid_argument);
  EXPECT_THROW(mel({1, 2}, {1}), std::invalid_argument);
}

TEST(Mel, PerSide) {
  routing::LoadMap loads, caps;
  loads.per_side[0] = {5, 10};
  loads.per_side[1] = {30};
  caps.per_side[0] = {10, 10};
  caps.per_side[1] = {10};
  EXPECT_DOUBLE_EQ(side_mel(loads, caps, 0), 1.0);
  EXPECT_DOUBLE_EQ(side_mel(loads, caps, 1), 3.0);
  EXPECT_THROW(side_mel(loads, caps, 2), std::invalid_argument);
}

TEST(PathMel, MaxAlongPathWithFlowAdded) {
  // Path over edges 0 and 2; loads without the flow 4 and 9; caps 10.
  std::vector<double> loads{4, 100, 9};
  std::vector<double> caps{10, 10, 10};
  EXPECT_DOUBLE_EQ(path_mel({0, 2}, loads, caps, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(path_mel({0}, loads, caps, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(path_mel({}, loads, caps, 1.0), 0.0);
}

TEST(Piecewise, MatchesFortzThorupBreakpoints) {
  // phi is continuous and convex; check segment values.
  std::vector<double> caps{1};
  EXPECT_NEAR(piecewise_linear_cost({0.0}, caps), 0.0, 1e-12);
  EXPECT_NEAR(piecewise_linear_cost({1.0 / 3.0}, caps), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(piecewise_linear_cost({2.0 / 3.0}, caps), 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(piecewise_linear_cost({0.9}, caps), 10.0 * 0.9 - 16.0 / 3.0, 1e-9);
  EXPECT_NEAR(piecewise_linear_cost({1.0}, caps), 70.0 - 178.0 / 3.0, 1e-9);
  EXPECT_NEAR(piecewise_linear_cost({1.1}, caps), 500.0 * 1.1 - 1468.0 / 3.0, 1e-9);
  EXPECT_NEAR(piecewise_linear_cost({1.2}, caps), 5000.0 * 1.2 - 16318.0 / 3.0, 1e-9);
}

TEST(Piecewise, ContinuousAtBreakpoints) {
  std::vector<double> caps{1};
  for (double b : {1.0 / 3.0, 2.0 / 3.0, 0.9, 1.0, 1.1}) {
    const double before = piecewise_linear_cost({b - 1e-9}, caps);
    const double after = piecewise_linear_cost({b + 1e-9}, caps);
    EXPECT_NEAR(before, after, 1e-5) << "discontinuity at " << b;
  }
}

TEST(Piecewise, PenalisesOverloadSharply) {
  std::vector<double> caps{1, 1};
  const double balanced = piecewise_linear_cost({0.6, 0.6}, caps);
  const double skewed = piecewise_linear_cost({1.15, 0.05}, caps);
  EXPECT_GT(skewed, 10 * balanced);
}

TEST(Piecewise, PairCostSumsSides) {
  routing::LoadMap loads, caps;
  loads.per_side[0] = {0.5};
  loads.per_side[1] = {0.5};
  caps.per_side[0] = {1};
  caps.per_side[1] = {1};
  EXPECT_NEAR(pair_piecewise_cost(loads, caps),
              2 * piecewise_linear_cost({0.5}, {1}), 1e-12);
}

}  // namespace
}  // namespace nexit::metrics
