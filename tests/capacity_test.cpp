#include <gtest/gtest.h>

#include "capacity/capacity.hpp"
#include "test_topologies.hpp"

namespace nexit::capacity {
namespace {

routing::LoadMap loads_with(std::vector<double> a, std::vector<double> b) {
  routing::LoadMap m;
  m.per_side[0] = std::move(a);
  m.per_side[1] = std::move(b);
  return m;
}

TEST(Capacity, ProportionalToLoadAboveMedian) {
  // Loads 10, 20, 30: median 20. With upgrade, 10 -> 20.
  auto caps = assign_capacities(loads_with({10, 20, 30}, {}), CapacityConfig{});
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 20.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][1], 20.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][2], 30.0);
}

TEST(Capacity, NoUpgradeKeepsRawLoads) {
  CapacityConfig cfg;
  cfg.upgrade_below_median = false;
  auto caps = assign_capacities(loads_with({10, 20, 30}, {}), cfg);
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 10.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][1], 20.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][2], 30.0);
}

TEST(Capacity, UnusedLinksGetMedianOfLoaded) {
  auto caps = assign_capacities(loads_with({0, 10, 30}, {}), CapacityConfig{});
  // Loaded links: 10, 30 -> median 20. Unused link gets 20.
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 20.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][1], 20.0);  // upgraded to median
  EXPECT_DOUBLE_EQ(caps.per_side[0][2], 30.0);
}

TEST(Capacity, UnusedRuleMeanAndMax) {
  CapacityConfig mean_cfg;
  mean_cfg.unused_rule = UnusedLinkRule::kMean;
  mean_cfg.upgrade_below_median = false;
  auto caps = assign_capacities(loads_with({0, 10, 30}, {}), mean_cfg);
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 20.0);

  CapacityConfig max_cfg;
  max_cfg.unused_rule = UnusedLinkRule::kMax;
  max_cfg.upgrade_below_median = false;
  caps = assign_capacities(loads_with({0, 10, 30}, {}), max_cfg);
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 30.0);
}

TEST(Capacity, PowerOfTwoRounding) {
  CapacityConfig cfg;
  cfg.upgrade_below_median = false;
  cfg.round_up_power_of_two = true;
  auto caps = assign_capacities(loads_with({3, 5, 9}, {}), cfg);
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 4.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][1], 8.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][2], 16.0);
}

TEST(Capacity, AllZeroSideGetsUnitCapacity) {
  auto caps = assign_capacities(loads_with({0, 0}, {5}), CapacityConfig{});
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 1.0);
  EXPECT_DOUBLE_EQ(caps.per_side[0][1], 1.0);
  EXPECT_DOUBLE_EQ(caps.per_side[1][0], 5.0);
}

TEST(Capacity, AllCapacitiesPositive) {
  auto caps = assign_capacities(
      loads_with({0, 1, 2, 0, 7}, {0, 0, 3}), CapacityConfig{});
  for (int s = 0; s < 2; ++s)
    for (double c : caps.per_side[s]) EXPECT_GT(c, 0.0);
}

TEST(Capacity, SidesAreIndependent) {
  auto caps = assign_capacities(loads_with({100, 200}, {1, 2}), CapacityConfig{});
  EXPECT_DOUBLE_EQ(caps.per_side[0][0], 150.0);  // median of {100,200}
  EXPECT_DOUBLE_EQ(caps.per_side[1][0], 1.5);
}

}  // namespace
}  // namespace nexit::capacity
