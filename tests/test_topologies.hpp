#pragma once

// Hand-built miniature topologies shared by routing/metrics/core/sim tests.
// Geometry is chosen so expected distances are easy to verify by hand: PoPs
// sit on the equator, where 1 degree of longitude is ~111.19 km.

#include <vector>

#include "topology/isp_topology.hpp"
#include "traffic/traffic.hpp"

namespace nexit::testing {

inline constexpr double kDegKm = 111.19492664455873;  // km per degree at equator

struct PopSpec {
  std::size_t city_index;
  double lat;
  double lon;
};

struct EdgeSpec {
  int u;
  int v;
  double weight;
  double length_km;
};

inline topology::IspTopology make_isp(std::int32_t asn,
                                      const std::vector<PopSpec>& pops,
                                      const std::vector<EdgeSpec>& edges) {
  std::vector<topology::Pop> ps;
  graph::Graph g(pops.size());
  for (std::size_t i = 0; i < pops.size(); ++i) {
    ps.push_back(topology::Pop{topology::PopId{static_cast<std::int32_t>(i)},
                               pops[i].city_index,
                               "c" + std::to_string(pops[i].city_index),
                               geo::Coord{pops[i].lat, pops[i].lon}, 1.0});
  }
  for (const auto& e : edges)
    g.add_edge(e.u, e.v, e.weight, e.length_km);
  return topology::IspTopology{topology::AsNumber{asn},
                               "AS" + std::to_string(asn), std::move(ps),
                               std::move(g)};
}

/// Figure-1-style pair. Both ISPs span cities 0,1,2 (lon 0, 10, 20 on the
/// equator), with three interconnections. ISP A's backbone is uniform
/// (each hop weight/length 100). ISP B's right-hand segment is a long detour
/// (weight/length 300), so entering B on the left to reach the right is
/// expensive. All link weights equal lengths.
///
///   A:  a0 --100-- a1 --100-- a2
///        |          |          |      (interconnections at cities 0,1,2)
///   B:  b0 --100-- b1 --300-- b2
inline topology::IspPair figure1_pair() {
  auto a = make_isp(1,
                    {{0, 0.0, 0.0}, {1, 0.0, 10.0}, {2, 0.0, 20.0}},
                    {{0, 1, 100, 100}, {1, 2, 100, 100}});
  auto b = make_isp(2,
                    {{0, 0.1, 0.0}, {1, 0.1, 10.0}, {2, 0.1, 20.0}},
                    {{0, 1, 100, 100}, {1, 2, 300, 300}});
  auto pair = topology::make_pair_if_peers(a, b, 3);
  if (!pair) throw std::logic_error("figure1_pair: expected 3 interconnections");
  return *std::move(pair);
}

/// Flow helper.
inline traffic::Flow make_flow(std::int32_t id, traffic::Direction dir,
                               std::int32_t src, std::int32_t dst,
                               double size = 1.0) {
  traffic::Flow f;
  f.id = traffic::FlowId{id};
  f.direction = dir;
  f.src = topology::PopId{src};
  f.dst = topology::PopId{dst};
  f.size = size;
  return f;
}

}  // namespace nexit::testing
