// Property tests of the negotiation engine on generated scenarios, swept
// over seeds with TEST_P. These pin the semantic guarantees the experiments
// rely on:
//   * win-win: neither ISP ends below its default in its own exact metric
//     (the Fig. 4b no-loss property), for every acceptance policy, with and
//     without a cheater on the other side;
//   * optimal bound: negotiated total distance never beats the per-flow
//     optimum and never loses to the default;
//   * determinism: identical seeds give identical outcomes;
//   * settlement: after rollback, cumulative true gains are >= 0 and every
//     rolled-back flow sits on its default.

#include <gtest/gtest.h>

#include "capacity/capacity.hpp"
#include "core/cheating.hpp"
#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "sim/pair_universe.hpp"
#include "traffic/traffic.hpp"

namespace nexit::core {
namespace {

class DistanceProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    sim::UniverseConfig u;
    u.isp_count = 16;
    u.seed = GetParam();
    u.max_pairs = 1;
    auto pairs = sim::build_pair_universe(u, 2);
    ASSERT_FALSE(pairs.empty());
    pair_ = std::make_unique<topology::IspPair>(std::move(pairs.front()));
    routing_ = std::make_unique<routing::PairRouting>(*pair_);
    util::Rng rng(GetParam() * 31 + 1);
    traffic::TrafficConfig tcfg;
    tcfg.model = traffic::WorkloadModel::kIdentical;
    tm_ = std::make_unique<traffic::TrafficMatrix>(
        traffic::TrafficMatrix::build_bidirectional(*pair_, tcfg, rng));
    candidates_.resize(pair_->interconnection_count());
    for (std::size_t i = 0; i < candidates_.size(); ++i) candidates_[i] = i;
    problem_ = make_distance_problem(*routing_, tm_->flows(), candidates_);
  }

  NegotiationOutcome run(AcceptancePolicy acceptance, int cheater = -1,
                         std::uint64_t seed = 9) {
    PreferenceConfig pc;
    DistanceOracle a(0, pc), b(1, pc);
    CheatingOracle ca(a, pc.range), cb(b, pc.range);
    PreferenceOracle& oa = cheater == 0 ? static_cast<PreferenceOracle&>(ca) : a;
    PreferenceOracle& ob = cheater == 1 ? static_cast<PreferenceOracle&>(cb) : b;
    NegotiationConfig cfg;
    cfg.acceptance = acceptance;
    cfg.seed = seed;
    NegotiationEngine engine(problem_, oa, ob, cfg);
    return engine.run();
  }

  std::unique_ptr<topology::IspPair> pair_;
  std::unique_ptr<routing::PairRouting> routing_;
  std::unique_ptr<traffic::TrafficMatrix> tm_;
  std::vector<std::size_t> candidates_;
  NegotiationProblem problem_;
};

TEST_P(DistanceProperties, NoLossInOwnMetricUnderAnyAcceptancePolicy) {
  for (AcceptancePolicy acc :
       {AcceptancePolicy::kProtective, AcceptancePolicy::kAlwaysAccept,
        AcceptancePolicy::kVetoOwnLoss}) {
    const auto out = run(acc);
    // Exact-metric cumulative gains are never negative after settlement...
    EXPECT_GE(out.true_gain_a, -1e-6);
    EXPECT_GE(out.true_gain_b, -1e-6);
    // ...and they equal the measured km reduction inside each network.
    for (int side = 0; side < 2; ++side) {
      const double def = metrics::side_flow_km(*routing_, tm_->flows(),
                                               problem_.default_assignment, side);
      const double neg =
          metrics::side_flow_km(*routing_, tm_->flows(), out.assignment, side);
      const double gain = side == 0 ? out.true_gain_a : out.true_gain_b;
      EXPECT_NEAR(def - neg, gain, 1e-6) << "side " << side;
    }
  }
}

TEST_P(DistanceProperties, TruthfulSideSafeAgainstCheater) {
  const auto out = run(AcceptancePolicy::kProtective, /*cheater=*/0);
  EXPECT_GE(out.true_gain_b, -1e-9);  // the truthful ISP never loses
}

TEST_P(DistanceProperties, BoundedByOptimalAndDefault) {
  const auto out = run(AcceptancePolicy::kProtective);
  const double def = metrics::total_flow_km(*routing_, tm_->flows(),
                                            problem_.default_assignment);
  const double neg =
      metrics::total_flow_km(*routing_, tm_->flows(), out.assignment);
  const auto optimal =
      routing::assign_min_total_km(*routing_, tm_->flows(), candidates_);
  const double opt = metrics::total_flow_km(*routing_, tm_->flows(), optimal);
  EXPECT_LE(opt, neg + 1e-9);
  EXPECT_LE(neg, def + 1e-9);
}

TEST_P(DistanceProperties, DeterministicGivenSeed) {
  const auto out1 = run(AcceptancePolicy::kProtective, -1, 123);
  const auto out2 = run(AcceptancePolicy::kProtective, -1, 123);
  EXPECT_EQ(out1.assignment.ix_of_flow, out2.assignment.ix_of_flow);
  EXPECT_EQ(out1.rounds, out2.rounds);
  EXPECT_DOUBLE_EQ(out1.true_gain_a, out2.true_gain_a);
}

TEST_P(DistanceProperties, RolledBackFlowsSitOnDefaults) {
  NegotiationConfig cfg;
  cfg.acceptance = AcceptancePolicy::kAlwaysAccept;  // stress the settlement
  cfg.record_trace = true;
  PreferenceConfig pc;
  DistanceOracle a(0, pc), b(1, pc);
  NegotiationEngine engine(problem_, a, b, cfg);
  const auto out = engine.run();
  EXPECT_GE(out.true_gain_a, -1e-6);
  EXPECT_GE(out.true_gain_b, -1e-6);
  // flows_moved counts pre-settlement moves; the final assignment may have
  // fewer non-default entries, never more.
  std::size_t non_default = 0;
  for (std::size_t i = 0; i < tm_->size(); ++i)
    if (out.assignment.ix_of_flow[i] != problem_.default_assignment.ix_of_flow[i])
      ++non_default;
  EXPECT_LE(non_default + out.flows_rolled_back, out.flows_moved + out.flows_rolled_back);
  EXPECT_LE(non_default, out.flows_moved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceProperties,
                         ::testing::Values(2, 5, 8, 13, 21, 34, 55, 89));

class BandwidthProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthProperties, NoLossAndMelSanityAfterFailure) {
  sim::UniverseConfig u;
  u.isp_count = 20;
  u.seed = GetParam();
  u.max_pairs = 1;
  auto pairs = sim::build_pair_universe(u, 3);
  if (pairs.empty()) GTEST_SKIP() << "no 3-link pair for this seed";
  const topology::IspPair& pair = pairs.front();
  routing::PairRouting routing(pair);
  util::Rng rng(GetParam());
  auto tm = traffic::TrafficMatrix::build(pair, traffic::Direction::kAtoB,
                                          traffic::TrafficConfig{}, rng);
  std::vector<std::size_t> all_ix(pair.interconnection_count());
  for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;
  auto pre = routing::assign_early_exit(routing, tm.flows(), all_ix);
  auto caps = capacity::assign_capacities(
      routing::compute_loads(routing, tm.flows(), pre),
      capacity::CapacityConfig{});

  for (std::size_t failed = 0; failed < pair.interconnection_count(); ++failed) {
    NegotiationProblem problem;
    try {
      problem = make_failure_problem(routing, tm.flows(), failed);
    } catch (const std::invalid_argument&) {
      continue;
    }
    if (problem.negotiable.empty()) continue;

    PreferenceConfig pc;
    BandwidthOracle a(0, pc, caps), b(1, pc, caps);
    NegotiationConfig cfg;
    cfg.reassign_traffic_fraction = 0.05;
    NegotiationEngine engine(problem, a, b, cfg);
    const auto out = engine.run();

    // No-loss holds in the bandwidth metric too (gains are in the oracle's
    // own units, so just check the sign).
    EXPECT_GE(out.true_gain_a, -1e-6);
    EXPECT_GE(out.true_gain_b, -1e-6);

    // The negotiated assignment only moves negotiable flows.
    for (std::size_t i = 0; i < tm.size(); ++i) {
      const bool negotiable =
          std::find(problem.negotiable.begin(), problem.negotiable.end(), i) !=
          problem.negotiable.end();
      if (!negotiable)
        EXPECT_EQ(out.assignment.ix_of_flow[i],
                  problem.default_assignment.ix_of_flow[i]);
      else
        EXPECT_NE(out.assignment.ix_of_flow[i], failed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthProperties,
                         ::testing::Values(3, 7, 19, 43, 101));

}  // namespace
}  // namespace nexit::core
