#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/oracle_registry.hpp"
#include "sim/scenarios.hpp"
#include "sim/spec.hpp"
#include "util/flags.hpp"

namespace nexit::sim {
namespace {

util::Flags kv_flags(const std::vector<std::string>& assignments) {
  return util::Flags(assignments);
}

std::string write_temp_spec(const std::string& content) {
  const std::string path =
      ::testing::TempDir() + "spec_test_" +
      std::to_string(
          ::testing::UnitTest::GetInstance()->random_seed()) +
      "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".spec";
  std::ofstream out(path);
  out << content;
  return path;
}

// --- OracleSpec / OracleRegistry ----------------------------------------

TEST(OracleSpec, ParsesAndRoundTripsTheCheatPrefix) {
  const core::OracleSpec plain = core::OracleSpec::parse("piecewise");
  EXPECT_EQ(plain.name, "piecewise");
  EXPECT_FALSE(plain.cheat);
  EXPECT_EQ(plain.to_string(), "piecewise");

  const core::OracleSpec cheat = core::OracleSpec::parse("cheat:bandwidth");
  EXPECT_EQ(cheat.name, "bandwidth");
  EXPECT_TRUE(cheat.cheat);
  EXPECT_EQ(cheat.to_string(), "cheat:bandwidth");
}

TEST(OracleRegistry, KnowsTheBuiltInOracleKinds) {
  const auto names = core::OracleRegistry::global().names();
  const std::vector<std::string> expected{"bandwidth", "bandwidth-excluded",
                                          "distance", "piecewise"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : expected) {
    const auto* entry = core::OracleRegistry::global().find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->needs_capacities, name != "distance") << name;
  }
}

TEST(OracleRegistry, BuildsCapacityFreeOraclesWithoutCapacities) {
  const core::BuiltOracle plain = core::OracleRegistry::global().build(
      {"distance", false}, {0, core::PreferenceConfig{}, nullptr});
  EXPECT_FALSE(plain.get().wants_reassignment());
  const core::BuiltOracle cheat = core::OracleRegistry::global().build(
      {"distance", true}, {1, core::PreferenceConfig{}, nullptr});
  // The decorator forwards wants_reassignment to the truthful inner oracle.
  EXPECT_FALSE(cheat.get().wants_reassignment());
}

TEST(OracleRegistry, RejectsUnknownNamesAndMissingCapacities) {
  EXPECT_THROW((void)core::OracleRegistry::global().build(
                   {"no-such-oracle", false},
                   {0, core::PreferenceConfig{}, nullptr}),
               std::invalid_argument);
  EXPECT_THROW((void)core::OracleRegistry::global().build(
                   {"bandwidth", false}, {0, core::PreferenceConfig{}, nullptr}),
               std::invalid_argument);
}

// --- ExperimentSpec round-trip ------------------------------------------

TEST(ExperimentSpec, DefaultSpecRoundTripsThroughItsSerialization) {
  const ExperimentSpec original;
  ExperimentSpec reparsed;
  std::vector<std::string> lines;
  for (const auto& [key, value] : original.to_key_values())
    lines.push_back(key + "=" + value);
  reparsed.merge_from_flags(kv_flags(lines));
  EXPECT_EQ(original, reparsed);
  EXPECT_EQ(original.to_text(), reparsed.to_text());
}

TEST(ExperimentSpec, FullyNonDefaultSpecRoundTrips) {
  ExperimentSpec s;
  s.experiment = ExperimentKind::kBandwidth;
  s.isps = 17;
  s.seed = 909;
  s.pairs = 33;
  s.pop_min = 4;
  s.pop_max = 9;
  s.objective[0] = {"piecewise", true};
  s.objective[1] = {"distance", false};
  s.pref_range = 7;
  s.turn = core::TurnPolicy::kLowerGain;
  s.proposal = core::ProposalPolicy::kBestLocalMinImpact;
  s.acceptance = core::AcceptancePolicy::kVetoOwnLoss;
  s.termination = core::TerminationPolicy::kNegotiateAll;
  s.tie_break = core::TieBreak::kDeterministic;
  s.reassign = 0.125;
  s.rollback = false;
  s.incremental = false;
  s.verify_incremental = -1;
  s.traffic_model = traffic::WorkloadModel::kUniformRandom;
  s.capacity_pow2 = true;
  s.capacity_unused = capacity::UnusedLinkRule::kMax;
  s.max_failures = 2;
  s.flow_baselines = true;
  s.unilateral = true;
  s.groups = 5;
  s.threads = 3;

  ExperimentSpec reparsed;
  std::vector<std::string> lines;
  for (const auto& [key, value] : s.to_key_values())
    lines.push_back(key + "=" + value);
  reparsed.merge_from_flags(kv_flags(lines));
  EXPECT_EQ(s, reparsed);
}

TEST(ExperimentSpec, SpecFileRoundTripsThroughMergeFromFile) {
  ExperimentSpec s;
  s.experiment = ExperimentKind::kBandwidth;
  s.objective[0] = {"piecewise", true};
  s.objective[1] = {"distance", false};
  s.isps = 21;
  const std::string path = write_temp_spec(
      "# comment line\n\n  " + s.to_text());  // leading blanks + comment
  ExperimentSpec loaded;
  loaded.merge_from_file(path);
  EXPECT_EQ(s, loaded);
  std::remove(path.c_str());
}

TEST(ExperimentSpec, FlagsOverrideOnlyTheKeysTheyMention) {
  ExperimentSpec s;
  s.pairs = 60;  // a preset default
  const char* argv[] = {"prog", "--isps=9", "--oracle-b=cheat:distance"};
  util::Flags flags(3, const_cast<char**>(argv));
  s.merge_from_flags(flags);
  EXPECT_EQ(s.isps, 9u);
  EXPECT_EQ(s.pairs, 60u);  // untouched
  EXPECT_EQ(s.objective[1], (core::OracleSpec{"distance", true}));
  EXPECT_EQ(s.objective[0], (core::OracleSpec{"default", false}));
}

// --- validation ----------------------------------------------------------

TEST(ExperimentSpec, ValidateResolvesDefaultObjectivesPerExperiment) {
  ExperimentSpec s;
  std::string error;
  EXPECT_TRUE(s.validate(&error)) << error;
  EXPECT_EQ(s.resolved_objective(0).name, "distance");
  s.experiment = ExperimentKind::kBandwidth;
  EXPECT_TRUE(s.validate(&error)) << error;
  EXPECT_EQ(s.resolved_objective(0).name, "bandwidth");
}

TEST(ExperimentSpec, ValidateRejectsUnknownOracleListingValidNames) {
  ExperimentSpec s;
  s.objective[0] = {"bandwith", false};  // typo
  std::string error;
  EXPECT_FALSE(s.validate(&error));
  EXPECT_NE(error.find("unknown oracle 'bandwith'"), std::string::npos)
      << error;
  for (const std::string& name : core::OracleRegistry::global().names())
    EXPECT_NE(error.find(name), std::string::npos) << error;
}

TEST(ExperimentSpec, ValidateRejectsLoadOraclesInTheDistanceExperiment) {
  ExperimentSpec s;
  s.objective[1] = {"bandwidth", false};
  std::string error;
  EXPECT_FALSE(s.validate(&error));
  EXPECT_NE(error.find("needs link capacities"), std::string::npos) << error;
  // The same objective is fine under the bandwidth experiment.
  s.experiment = ExperimentKind::kBandwidth;
  EXPECT_TRUE(s.validate(&error)) << error;
}

TEST(ExperimentSpec, ValidateRejectsExplicitInertKeys) {
  // --unilateral=true on a distance run would be silently ignored; that
  // must error like any other misconfiguration.
  ExperimentSpec s;
  const char* argv[] = {"prog", "--unilateral=true"};
  util::Flags flags(2, const_cast<char**>(argv));
  s.merge_from_flags(flags);
  std::string error;
  EXPECT_FALSE(s.validate(&error));
  EXPECT_NE(error.find("unilateral"), std::string::npos) << error;
  EXPECT_NE(error.find("experiment=bandwidth"), std::string::npos) << error;

  // The same key is fine when the experiment kind consumes it...
  ExperimentSpec bw;
  const char* bw_argv[] = {"prog", "--experiment=bandwidth",
                           "--unilateral=true"};
  util::Flags bw_flags(3, const_cast<char**>(bw_argv));
  bw.merge_from_flags(bw_flags);
  EXPECT_TRUE(bw.validate(&error)) << error;

  // ...and bandwidth runs reject explicit distance-only keys in turn.
  ExperimentSpec bw_groups;
  const char* g_argv[] = {"prog", "--experiment=bandwidth", "--groups=4"};
  util::Flags g_flags(3, const_cast<char**>(g_argv));
  bw_groups.merge_from_flags(g_flags);
  EXPECT_FALSE(bw_groups.validate(&error));
  EXPECT_NE(error.find("groups"), std::string::npos) << error;
}

TEST(ExperimentSpec, SerializedSpecsReloadDespiteInertDefaultKeys) {
  // A serialized spec spells out every key, including inert ones at their
  // defaults; loading it back (which marks them all overridden) must still
  // validate — otherwise the JSON record's spec section would not be
  // reproducible.
  ExperimentSpec s;  // distance defaults
  const std::string path = write_temp_spec(s.to_text());
  ExperimentSpec loaded;
  loaded.merge_from_file(path);
  std::string error;
  EXPECT_TRUE(loaded.validate(&error)) << error;
  EXPECT_EQ(s, loaded);
  std::remove(path.c_str());
}

TEST(ExperimentSpec, ValidateRejectsDegenerateKnobs) {
  ExperimentSpec zero_groups;
  zero_groups.groups = 0;
  std::string error;
  EXPECT_FALSE(zero_groups.validate(&error));
  EXPECT_NE(error.find("groups"), std::string::npos);

  ExperimentSpec bad_pops;
  bad_pops.pop_min = 9;
  bad_pops.pop_max = 4;
  EXPECT_FALSE(bad_pops.validate(&error));
  EXPECT_NE(error.find("pop-min"), std::string::npos);

  // A universe that cannot yield samples must be rejected up front — a
  // run over it would print NaN percentages and exit 0.
  ExperimentSpec no_pairs;
  no_pairs.pairs = 0;
  EXPECT_FALSE(no_pairs.validate(&error));
  EXPECT_NE(error.find("pairs"), std::string::npos);

  ExperimentSpec one_isp;
  one_isp.isps = 1;
  EXPECT_FALSE(one_isp.validate(&error));
  EXPECT_NE(error.find("isps"), std::string::npos);
}

using SpecDeathTest = ::testing::Test;

TEST(SpecDeathTest, UnknownSpecFileKeyExitsListingValidKeys) {
  const std::string path = write_temp_spec("isps=8\nispz=9\n");
  ExperimentSpec s;
  EXPECT_EXIT(s.merge_from_file(path), ::testing::ExitedWithCode(2),
              "unknown key: ispz");
  std::remove(path.c_str());
}

TEST(SpecDeathTest, MalformedSpecFileValueExitsNamingTheKeyAndTheFile) {
  const std::string path = write_temp_spec("isps=twelve\n");
  ExperimentSpec s;
  // The diagnostic must point at the spec file, not at a command-line flag
  // the user never typed.
  EXPECT_EXIT(s.merge_from_file(path), ::testing::ExitedWithCode(2),
              "--isps expects an integer.*in spec file");
  std::remove(path.c_str());
}

TEST(SpecDeathTest, OutOfSetSpecFileChoiceNamesTheFileToo) {
  const std::string path = write_temp_spec("turn=bogus\n");
  ExperimentSpec s;
  EXPECT_EXIT(s.merge_from_file(path), ::testing::ExitedWithCode(2),
              "--turn expects one of.*in spec file");
  std::remove(path.c_str());
}

TEST(SpecDeathTest, SpecFileLineWithoutAssignmentExits) {
  const std::string path = write_temp_spec("isps\n");
  ExperimentSpec s;
  EXPECT_EXIT(s.merge_from_file(path), ::testing::ExitedWithCode(2),
              "expected key=value");
  std::remove(path.c_str());
}

TEST(SpecDeathTest, OutOfSetChoiceExitsListingTheChoices) {
  ExperimentSpec s;
  const char* argv[] = {"prog", "--experiment=bandwidht"};
  util::Flags flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(s.merge_from_flags(flags), ::testing::ExitedWithCode(2),
              "expects one of \\{distance, bandwidth, runtime\\}");
}

// --- scenario presets ----------------------------------------------------

TEST(ScenarioRegistry, EveryPresetSpecValidatesAndRoundTrips) {
  for (const ScenarioPreset& preset : scenario_registry()) {
    ExperimentSpec spec;
    preset.tune(spec);
    std::string error;
    EXPECT_TRUE(spec.validate(&error)) << preset.name << ": " << error;

    ExperimentSpec reparsed;
    std::vector<std::string> lines;
    for (const auto& [key, value] : spec.to_key_values())
      lines.push_back(key + "=" + value);
    reparsed.merge_from_flags(kv_flags(lines));
    EXPECT_EQ(spec, reparsed) << preset.name
                              << ": serialize/parse round trip diverged";
  }
}

TEST(ExperimentSpec, SeedRoundTripsThroughItsSignedSpelling) {
  // get_int parses int64, so a seed with the top bit set must serialize as
  // its two's-complement twin to stay reloadable from a record.
  const auto reload = [](const ExperimentSpec& spec) {
    ExperimentSpec reparsed;
    std::vector<std::string> lines;
    for (const auto& [key, value] : spec.to_key_values())
      lines.push_back(key + "=" + value);
    reparsed.merge_from_flags(kv_flags(lines));
    return reparsed;
  };
  ExperimentSpec s;
  s.seed = 0xffffffffffffffffull;
  EXPECT_EQ(reload(s).seed, s.seed);
  EXPECT_EQ(s, reload(s));
  s.seed = 0x8000000000000000ull;
  EXPECT_EQ(reload(s).seed, s.seed);
}

TEST(ScenarioRegistry, PresetIgnoredKeysAreRejectedNotSwallowed) {
  // table3 only consumes --seed; the legacy binary exited 2 for anything
  // else, and the preset must too instead of silently running unchanged.
  const ScenarioPreset* table3 = find_scenario("table3");
  ASSERT_NE(table3, nullptr);
  const char* argv[] = {"prog", "--isps=99"};
  util::Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(run_scenario(*table3, flags), 2);

  const ScenarioPreset* pref_range = find_scenario("abl_pref_range");
  ASSERT_NE(pref_range, nullptr);
  const char* sweep_argv[] = {"prog", "--pref-range=5"};
  util::Flags sweep_flags(2, const_cast<char**>(sweep_argv));
  EXPECT_EQ(run_scenario(*pref_range, sweep_flags), 2);

  // Every engine-pinned preset must refuse --experiment: each run function
  // hard-codes its engine, so the override would either assert or silently
  // run the wrong experiment under the figure's name.
  for (const ScenarioPreset& preset : scenario_registry()) {
    if (std::string(preset.name) == "custom") continue;
    ExperimentSpec tuned;
    preset.tune(tuned);
    const std::string other =
        tuned.experiment == ExperimentKind::kDistance ? "bandwidth"
                                                      : "distance";
    const std::string flag = "--experiment=" + other;
    const char* argv2[] = {"prog", flag.c_str()};
    util::Flags flags2(2, const_cast<char**>(argv2));
    EXPECT_EQ(run_scenario(preset, flags2), 2) << preset.name;
  }

  // fig8's analysis hard-depends on the unilateral series; fig5's on the
  // flow-pair baselines. Turning them off must error, not print nonsense.
  const char* uni_argv[] = {"prog", "--unilateral=false"};
  util::Flags uni_flags(2, const_cast<char**>(uni_argv));
  EXPECT_EQ(run_scenario(*find_scenario("fig8"), uni_flags), 2);
  const char* fb_argv[] = {"prog", "--flow-baselines=false"};
  util::Flags fb_flags(2, const_cast<char**>(fb_argv));
  EXPECT_EQ(run_scenario(*find_scenario("fig5"), fb_flags), 2);
}

TEST(ScenarioRegistry, CheatingScenariosOwnTheCheatAxis) {
  // fig10/fig11 compare both-truthful against one-cheater, so an explicit
  // cheat: objective cannot mean anything — honouring it would make the
  // "both-truthful" arm cheat, stripping it would swallow the flag. Both
  // presets must reject it outright (either side).
  for (const char* name : {"fig10", "fig11"}) {
    const ScenarioPreset* preset = find_scenario(name);
    ASSERT_NE(preset, nullptr) << name;
    const char* a_argv[] = {"prog", "--isps=12", "--pairs=3",
                            "--oracle-a=cheat:default"};
    util::Flags a_flags(4, const_cast<char**>(a_argv));
    EXPECT_EQ(run_scenario(*preset, a_flags), 2) << name;
    const char* b_argv[] = {"prog", "--isps=12", "--pairs=3",
                            "--oracle-b=cheat:default"};
    util::Flags b_flags(4, const_cast<char**>(b_argv));
    EXPECT_EQ(run_scenario(*preset, b_flags), 2) << name;
  }
  // The base oracle is still a real knob: fig10 with a plain non-default
  // base runs fine (cheat is applied by the scenario itself).
  const ScenarioPreset* fig10 = find_scenario("fig10");
  const char* ok_argv[] = {"prog", "--isps=12", "--pairs=2"};
  util::Flags ok_flags(3, const_cast<char**>(ok_argv));
  EXPECT_EQ(run_scenario(*fig10, ok_flags), 0);
}

TEST(ScenarioRegistry, NamesAreUniqueAndFindable) {
  const auto names = scenario_names();
  for (const std::string& name : names) {
    const ScenarioPreset* preset = find_scenario(name);
    ASSERT_NE(preset, nullptr) << name;
    EXPECT_EQ(preset->name, name);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  // Every paper figure/ablation the legacy binaries covered is registered.
  for (const char* required :
       {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "table3", "abl_destination_based", "abl_flow_fraction",
        "abl_group_negotiation", "abl_ix_count", "abl_models", "abl_policies",
        "abl_pref_range", "custom",
        // The spec-driven additions: declared-axis figures and the runtime
        // timelines behind the same registry.
        "fig4_sweep", "fig7_sweep", "runtime", "runtime_churn"}) {
    EXPECT_NE(find_scenario(required), nullptr) << required;
  }
}

// --- preset <-> legacy-config digest equivalence -------------------------
// The engines used to be configured by hand-built config structs (a bool
// per paper figure). These tests pin that a spec-built config reproduces
// the hand-built one bit-for-bit, and that a serialize/parse round trip
// does not perturb the engine outcome — the library-level half of the
// migration guard (CI diffs the binaries for the other half).

ExperimentSpec small(ExperimentSpec spec) {
  spec.isps = 14;
  spec.pairs = 4;
  return spec;
}

ExperimentSpec round_tripped(const ExperimentSpec& spec) {
  ExperimentSpec reparsed;
  std::vector<std::string> lines;
  for (const auto& [key, value] : spec.to_key_values())
    lines.push_back(key + "=" + value);
  reparsed.merge_from_flags(kv_flags(lines));
  return reparsed;
}

TEST(SpecDigest, DistanceSpecMatchesHandBuiltLegacyConfig) {
  ExperimentSpec spec = small(ExperimentSpec{});
  ASSERT_TRUE(spec.validate(nullptr));

  DistanceExperimentConfig legacy;  // what fig4's main used to build
  legacy.universe.isp_count = 14;
  legacy.universe.seed = 42;
  legacy.universe.max_pairs = 4;
  legacy.universe.generator.min_pops = 6;   // the legacy --pop-min default
  legacy.universe.generator.max_pops = 20;  // the legacy --pop-max default
  legacy.negotiation.acceptance = core::AcceptancePolicy::kProtective;
  legacy.negotiation.preferences.range = 10;
  // The legacy distance benches left reassign at 0.0; the spec default is
  // the paper's 0.05. Distance oracles never request reassignment, so the
  // two must still be bit-identical — this pins that equivalence.
  legacy.run_flow_pair_baselines = false;

  const auto from_spec = run_distance_experiment(spec.to_distance_config());
  const auto from_legacy = run_distance_experiment(legacy);
  EXPECT_EQ(digest_samples(from_spec), digest_samples(from_legacy));

  const auto from_round_trip =
      run_distance_experiment(round_tripped(spec).to_distance_config());
  EXPECT_EQ(digest_samples(from_spec), digest_samples(from_round_trip));
}

TEST(SpecDigest, CheatingSpecMatchesHandBuiltLegacyConfig) {
  ExperimentSpec spec = small(ExperimentSpec{});
  spec.objective[0] = {"default", true};  // fig10's cheating arm
  ASSERT_TRUE(spec.validate(nullptr));

  DistanceExperimentConfig legacy;
  legacy.universe.isp_count = 14;
  legacy.universe.seed = 42;
  legacy.universe.max_pairs = 4;
  legacy.universe.generator.min_pops = 6;   // the legacy --pop-min default
  legacy.universe.generator.max_pops = 20;  // the legacy --pop-max default
  legacy.run_flow_pair_baselines = false;
  legacy.objective[0].cheat = true;

  EXPECT_EQ(digest_samples(run_distance_experiment(spec.to_distance_config())),
            digest_samples(run_distance_experiment(legacy)));
}

TEST(SpecDigest, BandwidthSpecMatchesHandBuiltLegacyConfig) {
  ExperimentSpec spec = small(ExperimentSpec{});
  spec.experiment = ExperimentKind::kBandwidth;
  ASSERT_TRUE(spec.validate(nullptr));

  BandwidthExperimentConfig legacy;  // what fig7's main used to build
  legacy.universe.isp_count = 14;
  legacy.universe.seed = 42;
  legacy.universe.max_pairs = 4;
  legacy.universe.generator.min_pops = 6;   // the legacy --pop-min default
  legacy.universe.generator.max_pops = 20;  // the legacy --pop-max default
  legacy.negotiation.preferences.range = 10;
  legacy.negotiation.reassign_traffic_fraction = 0.05;
  legacy.include_unilateral = false;

  const auto from_spec = run_bandwidth_experiment(spec.to_bandwidth_config());
  const auto from_legacy = run_bandwidth_experiment(legacy);
  EXPECT_EQ(digest_samples(from_spec), digest_samples(from_legacy));

  const auto from_round_trip =
      run_bandwidth_experiment(round_tripped(spec).to_bandwidth_config());
  EXPECT_EQ(digest_samples(from_spec), digest_samples(from_round_trip));
}

TEST(SpecDigest, DiverseAndPiecewiseSpecsMatchHandBuiltConfigs) {
  // fig9's diverse-criteria arm.
  ExperimentSpec diverse = small(ExperimentSpec{});
  diverse.experiment = ExperimentKind::kBandwidth;
  diverse.objective[1] = {"distance", false};
  ASSERT_TRUE(diverse.validate(nullptr));
  BandwidthExperimentConfig legacy_diverse;
  legacy_diverse.universe.isp_count = 14;
  legacy_diverse.universe.seed = 42;
  legacy_diverse.universe.max_pairs = 4;
  legacy_diverse.universe.generator.min_pops = 6;
  legacy_diverse.universe.generator.max_pops = 20;
  legacy_diverse.negotiation.reassign_traffic_fraction = 0.05;
  legacy_diverse.include_unilateral = false;
  legacy_diverse.objective[1] = {"distance", false};
  EXPECT_EQ(
      digest_samples(run_bandwidth_experiment(diverse.to_bandwidth_config())),
      digest_samples(run_bandwidth_experiment(legacy_diverse)));

  // abl_models' piecewise arm, composed with a cheating upstream — the
  // "cheating + piecewise + diverse criteria" composition the acceptance
  // criteria call for, driven purely from a (parsed) spec.
  ExperimentSpec composed = small(ExperimentSpec{});
  composed.experiment = ExperimentKind::kBandwidth;
  composed.objective[0] = {"piecewise", true};
  composed.objective[1] = {"distance", false};
  ASSERT_TRUE(composed.validate(nullptr));
  BandwidthExperimentConfig legacy_composed;
  legacy_composed.universe.isp_count = 14;
  legacy_composed.universe.seed = 42;
  legacy_composed.universe.max_pairs = 4;
  legacy_composed.universe.generator.min_pops = 6;
  legacy_composed.universe.generator.max_pops = 20;
  legacy_composed.negotiation.reassign_traffic_fraction = 0.05;
  legacy_composed.include_unilateral = false;
  legacy_composed.objective[0] = {"piecewise", true};
  legacy_composed.objective[1] = {"distance", false};
  EXPECT_EQ(
      digest_samples(
          run_bandwidth_experiment(round_tripped(composed).to_bandwidth_config())),
      digest_samples(run_bandwidth_experiment(legacy_composed)));
}

TEST(SpecDigest, ExperimentEnginesRejectUnknownOracles) {
  DistanceExperimentConfig distance;
  distance.universe.isp_count = 10;
  distance.universe.max_pairs = 1;
  distance.objective[0] = {"bandwidth", false};  // needs capacities
  EXPECT_THROW((void)run_distance_experiment(distance), std::invalid_argument);

  BandwidthExperimentConfig bandwidth;
  bandwidth.universe.isp_count = 10;
  bandwidth.universe.max_pairs = 1;
  bandwidth.objective[1] = {"no-such", false};
  EXPECT_THROW((void)run_bandwidth_experiment(bandwidth),
               std::invalid_argument);
}

}  // namespace
}  // namespace nexit::sim
