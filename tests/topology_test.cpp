#include <gtest/gtest.h>

#include <set>

#include "topology/generator.hpp"
#include "topology/isp_topology.hpp"

namespace nexit::topology {
namespace {

IspTopology tiny_isp(AsNumber asn, std::vector<std::size_t> city_idx) {
  const auto& db = geo::CityDb::builtin();
  std::vector<Pop> pops;
  graph::Graph g(city_idx.size());
  for (std::size_t i = 0; i < city_idx.size(); ++i) {
    const auto& c = db.at(city_idx[i]);
    pops.push_back(Pop{PopId{static_cast<std::int32_t>(i)}, city_idx[i], c.name,
                       c.coord, c.population_millions});
    if (i > 0)
      g.add_edge(static_cast<graph::NodeIndex>(i - 1),
                 static_cast<graph::NodeIndex>(i), 1.0, 100.0);
  }
  return IspTopology{asn, "T" + std::to_string(asn.value()), std::move(pops),
                     std::move(g)};
}

TEST(IspTopology, PopLookupByCity) {
  IspTopology t = tiny_isp(AsNumber{1}, {0, 1, 2});
  EXPECT_TRUE(t.pop_in_city(1).has_value());
  EXPECT_EQ(t.pop_in_city(1)->value(), 1);
  EXPECT_FALSE(t.pop_in_city(99).has_value());
}

TEST(IspTopology, RejectsDisconnectedBackbone) {
  const auto& db = geo::CityDb::builtin();
  std::vector<Pop> pops;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& c = db.at(i);
    pops.push_back(Pop{PopId{static_cast<std::int32_t>(i)}, i, c.name, c.coord,
                       c.population_millions});
  }
  graph::Graph g(3);
  g.add_edge(0, 1, 1, 1);  // node 2 isolated
  EXPECT_THROW(IspTopology(AsNumber{1}, "X", std::move(pops), std::move(g)),
               std::invalid_argument);
}

TEST(IspTopology, RejectsOutOfOrderPopIds) {
  const auto& db = geo::CityDb::builtin();
  std::vector<Pop> pops{
      Pop{PopId{1}, 0, db.at(0).name, db.at(0).coord, 1.0},
      Pop{PopId{0}, 1, db.at(1).name, db.at(1).coord, 1.0},
  };
  graph::Graph g(2);
  g.add_edge(0, 1, 1, 1);
  EXPECT_THROW(IspTopology(AsNumber{1}, "X", std::move(pops), std::move(g)),
               std::invalid_argument);
}

TEST(IspPair, SharedCitiesBecomeInterconnections) {
  IspTopology a = tiny_isp(AsNumber{1}, {0, 1, 2, 3});
  IspTopology b = tiny_isp(AsNumber{2}, {2, 3, 4, 5});
  auto pair = make_pair_if_peers(a, b, 2);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->interconnection_count(), 2u);
  std::set<std::size_t> cities;
  for (const auto& l : pair->interconnections()) cities.insert(l.city_index);
  EXPECT_EQ(cities, (std::set<std::size_t>{2, 3}));
}

TEST(IspPair, TooFewSharedCitiesReturnsNullopt) {
  IspTopology a = tiny_isp(AsNumber{1}, {0, 1, 2});
  IspTopology b = tiny_isp(AsNumber{2}, {2, 3, 4});
  EXPECT_FALSE(make_pair_if_peers(a, b, 2).has_value());
  EXPECT_TRUE(make_pair_if_peers(a, b, 1).has_value());
}

TEST(IspPair, FailedInterconnectionTracking) {
  IspTopology a = tiny_isp(AsNumber{1}, {0, 1, 2, 3});
  IspTopology b = tiny_isp(AsNumber{2}, {1, 2, 3, 4});
  auto pair = make_pair_if_peers(a, b, 3);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->up_interconnections().size(), 3u);
  IspPair failed = pair->with_failed(1);
  EXPECT_EQ(failed.up_interconnections().size(), 2u);
  EXPECT_FALSE(failed.interconnections()[1].up);
  // Original unchanged.
  EXPECT_EQ(pair->up_interconnections().size(), 3u);
  EXPECT_THROW(pair->with_failed(9), std::out_of_range);
}

class GeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorTest, GeneratedIspIsWellFormed) {
  util::Rng rng(GetParam());
  TopologyGenerator gen(geo::CityDb::builtin(), GeneratorConfig{});
  IspTopology isp = gen.generate(AsNumber{77}, rng);

  EXPECT_GE(isp.pop_count(), gen.config().min_pops);
  EXPECT_LE(isp.pop_count(), gen.config().max_pops);
  EXPECT_TRUE(isp.backbone().connected());
  // Each PoP in a distinct city.
  std::set<std::size_t> cities;
  for (const auto& p : isp.pops()) cities.insert(p.city_index);
  EXPECT_EQ(cities.size(), isp.pop_count());
  // Link weights positive, roughly proportional to length.
  for (const auto& e : isp.backbone().edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_GE(e.length_km, 1.0);
    EXPECT_GE(e.weight, e.length_km * 0.8);
    EXPECT_LE(e.weight, e.length_km * 1.2 + 50.0);
  }
  // Average degree in a plausible backbone range.
  const double avg_degree =
      2.0 * static_cast<double>(isp.backbone().edge_count()) /
      static_cast<double>(isp.pop_count());
  EXPECT_GE(avg_degree, 1.5);
  EXPECT_LE(avg_degree, 6.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorTest,
                         ::testing::Values(1, 2, 3, 17, 42, 1234, 99999));

TEST(Generator, DeterministicGivenSeed) {
  TopologyGenerator gen(geo::CityDb::builtin(), GeneratorConfig{});
  util::Rng r1(42), r2(42);
  IspTopology a = gen.generate(AsNumber{5}, r1);
  IspTopology b = gen.generate(AsNumber{5}, r2);
  ASSERT_EQ(a.pop_count(), b.pop_count());
  for (std::size_t i = 0; i < a.pop_count(); ++i) {
    EXPECT_EQ(a.pops()[i].city_index, b.pops()[i].city_index);
  }
  EXPECT_EQ(a.backbone().edge_count(), b.backbone().edge_count());
}

TEST(Generator, UniverseHasPeeringPairs) {
  TopologyGenerator gen(geo::CityDb::builtin(), GeneratorConfig{});
  util::Rng rng(7);
  auto isps = gen.generate_universe(20, rng);
  ASSERT_EQ(isps.size(), 20u);
  int pairs_2plus = 0;
  for (std::size_t i = 0; i < isps.size(); ++i)
    for (std::size_t j = i + 1; j < isps.size(); ++j)
      if (make_pair_if_peers(isps[i], isps[j], 2).has_value()) ++pairs_2plus;
  // Population-biased sampling makes shared big cities common.
  EXPECT_GT(pairs_2plus, 10);
}

TEST(Generator, BadConfigThrows) {
  GeneratorConfig cfg;
  cfg.min_pops = 10;
  cfg.max_pops = 5;
  EXPECT_THROW(TopologyGenerator(geo::CityDb::builtin(), cfg),
               std::invalid_argument);
  GeneratorConfig cfg2;
  cfg2.max_pops = 100000;
  EXPECT_THROW(TopologyGenerator(geo::CityDb::builtin(), cfg2),
               std::invalid_argument);
}

TEST(Generator, FootprintClassification) {
  EXPECT_EQ(TopologyGenerator::classify_city({40.71, -74.01}),
            Footprint::kNorthAmerica);
  EXPECT_EQ(TopologyGenerator::classify_city({48.86, 2.35}), Footprint::kEurope);
  EXPECT_EQ(TopologyGenerator::classify_city({35.68, 139.69}), Footprint::kGlobal);
  EXPECT_EQ(TopologyGenerator::classify_city({-33.87, 151.21}), Footprint::kGlobal);
}

}  // namespace
}  // namespace nexit::topology
