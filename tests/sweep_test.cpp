// Sweep axes, the runtime.* spec namespace, --spec-out round trips, and the
// self-documenting key registry — the spec-driven-sweeps surface of
// sim::ExperimentSpec and sim::run_scenario.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "runtime/scenario.hpp"
#include "sim/scenarios.hpp"
#include "sim/spec.hpp"
#include "sim/spec_docs.hpp"
#include "test_digest.hpp"
#include "util/flags.hpp"

namespace nexit::sim {
namespace {

using nexit::testing::digest_in;
using nexit::testing::kv_flags;
using nexit::testing::read_file;
using nexit::testing::temp_path;

// --- axis parsing --------------------------------------------------------

TEST(SweepAxis, CommaListsAndNumericRangesExpand) {
  ExperimentSpec list;
  list.merge_from_flags(kv_flags({"sweep.isps=10,20,30"}));
  ASSERT_NE(list.axis("isps"), nullptr);
  EXPECT_EQ(list.axis("isps")->values,
            (std::vector<std::string>{"10", "20", "30"}));

  ExperimentSpec range;
  range.merge_from_flags(kv_flags({"sweep.pairs=1:9:2"}));
  ASSERT_NE(range.axis("pairs"), nullptr);
  EXPECT_EQ(range.axis("pairs")->values,
            (std::vector<std::string>{"1", "3", "5", "7", "9"}));

  // Non-integral ranges expand through the double formatter and re-parse
  // as the same doubles.
  ExperimentSpec dbl;
  dbl.merge_from_flags(kv_flags({"sweep.reassign=0.05:0.15:0.05"}));
  ASSERT_NE(dbl.axis("reassign"), nullptr);
  ASSERT_EQ(dbl.axis("reassign")->values.size(), 3u);
  EXPECT_DOUBLE_EQ(std::stod(dbl.axis("reassign")->values[1]), 0.1);
}

TEST(SweepAxis, OracleValuesWithColonsAreNotRanges) {
  // `cheat:piecewise` contains ':' but is a value, not a lo:hi:step range.
  ExperimentSpec s;
  s.merge_from_flags(kv_flags({"sweep.oracle-a=cheat:piecewise,distance"}));
  ASSERT_NE(s.axis("oracle-a"), nullptr);
  EXPECT_EQ(s.axis("oracle-a")->values,
            (std::vector<std::string>{"cheat:piecewise", "distance"}));
}

TEST(SweepAxis, AxesSerializeSortedAndRoundTrip) {
  ExperimentSpec s;
  s.merge_from_flags(kv_flags({"sweep.pairs=2,4"}));
  s.merge_from_flags(kv_flags({"sweep.isps=10:20:10"}));  // second source
  ASSERT_EQ(s.sweeps.size(), 2u);
  EXPECT_EQ(s.sweeps[0].key, "isps");  // canonical order: sorted by key
  EXPECT_EQ(s.sweeps[1].key, "pairs");

  ExperimentSpec reparsed;
  std::vector<std::string> lines;
  for (const auto& [key, value] : s.to_key_values())
    lines.push_back(key + "=" + value);
  reparsed.merge_from_flags(kv_flags(lines));
  EXPECT_EQ(s, reparsed);
  // The range axis round-trips as its expanded value list.
  EXPECT_EQ(reparsed.value_of("sweep.isps"), "10,20");
}

TEST(SweepAxis, RedeclaringAnAxisReplacesItsValues) {
  ExperimentSpec s;
  s.sweeps = {{"pref-range", {"1", "10"}}};  // a preset's declaration
  s.merge_from_flags(kv_flags({"sweep.pref-range=3,5"}));
  ASSERT_EQ(s.sweeps.size(), 1u);
  EXPECT_EQ(s.sweeps[0].values, (std::vector<std::string>{"3", "5"}));
}

TEST(SweepAxis, CrossProductExpandsInOdometerOrder) {
  const std::vector<SweepAxis> axes = {{"isps", {"10", "20"}},
                                       {"pairs", {"1", "2", "3"}}};
  const auto points = expand_sweep(axes);
  ASSERT_EQ(points.size(), 6u);
  // Rightmost axis varies fastest; every point lists axes in order.
  EXPECT_EQ(points[0],
            (std::vector<std::pair<std::string, std::string>>{
                {"isps", "10"}, {"pairs", "1"}}));
  EXPECT_EQ(points[1][1].second, "2");
  EXPECT_EQ(points[2][1].second, "3");
  EXPECT_EQ(points[3][0].second, "20");
  EXPECT_EQ(points[5],
            (std::vector<std::pair<std::string, std::string>>{
                {"isps", "20"}, {"pairs", "3"}}));
  // Deterministic: expanding again yields the same order.
  EXPECT_EQ(points, expand_sweep(axes));
}

using SweepDeathTest = ::testing::Test;

TEST(SweepDeathTest, MalformedAxesExitNamingTheAxis) {
  const auto merge = [](const char* assignment) {
    ExperimentSpec s;
    s.merge_from_flags(util::Flags({assignment}));
  };
  EXPECT_EXIT(merge("sweep.isps="), ::testing::ExitedWithCode(2),
              "--sweep.isps.*empty value list");
  EXPECT_EXIT(merge("sweep.isps=5:1:1"), ::testing::ExitedWithCode(2),
              "--sweep.isps.*lo must be <= hi");
  EXPECT_EXIT(merge("sweep.isps=1:10:0"), ::testing::ExitedWithCode(2),
              "--sweep.isps.*step must be > 0");
  EXPECT_EXIT(merge("sweep.isps=1:2:3:4"), ::testing::ExitedWithCode(2),
              "--sweep.isps.*exactly lo:hi:step");
  EXPECT_EXIT(merge("sweep.isps=4,,8"), ::testing::ExitedWithCode(2),
              "--sweep.isps.*empty value in list");
  EXPECT_EXIT(merge("sweep.bogus=1,2"), ::testing::ExitedWithCode(2),
              "--sweep.bogus.*unknown sweep axis");
  EXPECT_EXIT(merge("sweep.experiment=distance,bandwidth"),
              ::testing::ExitedWithCode(2), "cannot be swept");
}

// --- axis/preset interaction --------------------------------------------

TEST(SweepRun, LockedAndForeignAxesAreRejected) {
  // fig8's run controls `unilateral` itself: sweeping it must exit like the
  // scalar override does.
  EXPECT_EQ(run_scenario(*find_scenario("fig8"),
                         kv_flags({"sweep.unilateral=true,false"})),
            2);
  // A variant axis belongs to exactly one scenario.
  EXPECT_EQ(
      run_scenario(*find_scenario("fig4"), kv_flags({"sweep.model=paper"})), 2);
  // Sweeping a key the experiment kind ignores fails validation.
  EXPECT_EQ(run_scenario(*find_scenario("custom"),
                         kv_flags({"sweep.unilateral=true,false"})),
            2);
  // An out-of-table variant value fails inside the owning preset's run.
  EXPECT_EQ(run_scenario(*find_scenario("abl_models"),
                         kv_flags({"isps=12", "pairs=2", "threads=2",
                                   "sweep.model=paper,quadratic"})),
            2);
}

TEST(SweepRun, OwnedAxisPreValidatesBeforeAnyEngineRun) {
  // pref-range=0 violates validate(); the run must fail up front (exit
  // path: return 2 from run_scenario's pre-validation, not mid-sweep).
  EXPECT_EQ(run_scenario(*find_scenario("abl_pref_range"),
                         kv_flags({"isps=12", "pairs=2",
                                   "sweep.pref-range=5,0"})),
            2);
}

TEST(SweepRun, GenericSweepDigestIsThreadStableAndPointsRecorded) {
  const std::string json1 = temp_path("_t1.json");
  const std::string json2 = temp_path("_t2.json");
  EXPECT_EQ(run_scenario(*find_scenario("fig4"),
                         kv_flags({"isps=12", "pairs=2", "threads=1",
                                   "sweep.isps=12,14", "json=" + json1})),
            0);
  EXPECT_EQ(run_scenario(*find_scenario("fig4"),
                         kv_flags({"isps=12", "pairs=2", "threads=2",
                                   "sweep.isps=12,14", "json=" + json2})),
            0);
  const std::string d1 = digest_in(json1), d2 = digest_in(json2);
  EXPECT_EQ(d1.size(), 16u);
  EXPECT_EQ(d1, d2) << "sweep digest must be bit-identical across --threads";
  // The record carries one section per expanded point plus the sweep axis.
  const std::string record = read_file(json1);
  EXPECT_NE(record.find("\"points\": ["), std::string::npos);
  EXPECT_NE(record.find("\"point\": \"isps=12\""), std::string::npos);
  EXPECT_NE(record.find("\"point\": \"isps=14\""), std::string::npos);
  EXPECT_NE(record.find("\"sweep.isps\": \"12,14\""), std::string::npos);
  std::remove(json1.c_str());
  std::remove(json2.c_str());
}

TEST(SweepRun, OwnedAxisDigestIsThreadStable) {
  const std::string json1 = temp_path("_t1.json");
  const std::string json2 = temp_path("_t2.json");
  EXPECT_EQ(run_scenario(*find_scenario("abl_pref_range"),
                         kv_flags({"isps=12", "pairs=2", "threads=1",
                                   "sweep.pref-range=1,10",
                                   "json=" + json1})),
            0);
  EXPECT_EQ(run_scenario(*find_scenario("abl_pref_range"),
                         kv_flags({"isps=12", "pairs=2", "threads=2",
                                   "sweep.pref-range=1,10",
                                   "json=" + json2})),
            0);
  EXPECT_EQ(digest_in(json1), digest_in(json2));
  std::remove(json1.c_str());
  std::remove(json2.c_str());
}

TEST(SweepRun, SpecOutRoundTripsToAnIdenticalRunDigest) {
  const std::string archived = temp_path(".spec");
  const std::string json1 = temp_path("_a.json");
  const std::string json2 = temp_path("_b.json");
  // A 2-axis sweep on the generic runner, archived via --spec-out...
  EXPECT_EQ(run_scenario(*find_scenario("custom"),
                         kv_flags({"isps=12", "pairs=2", "sweep.isps=12,14",
                                   "sweep.pairs=1:2:1",
                                   "spec-out=" + archived, "json=" + json1})),
            0);
  // ...reloads through --spec alone and reproduces the digest exactly.
  EXPECT_EQ(run_scenario(*find_scenario("custom"),
                         kv_flags({"spec=" + archived, "json=" + json2})),
            0);
  EXPECT_EQ(digest_in(json1), digest_in(json2));
  // The archive is a plain spec file with the range already expanded.
  const std::string text = read_file(archived);
  EXPECT_NE(text.find("sweep.isps=12,14"), std::string::npos);
  EXPECT_NE(text.find("sweep.pairs=1,2"), std::string::npos);
  std::remove(archived.c_str());
  std::remove(json1.c_str());
  std::remove(json2.c_str());
}

// --- runtime.* namespace -------------------------------------------------

TEST(RuntimeSpec, EventsAndTargetsRoundTrip) {
  ExperimentSpec s;
  s.merge_from_flags(kv_flags(
      {"experiment=runtime",
       "runtime.events=fail@1/0/busiest,restart@3/1,churn@5/2/4242,"
       "start@7/3,fail@9/0/2",
       "runtime.fault-targets=3,5"}));
  ASSERT_EQ(s.runtime.events.size(), 5u);
  EXPECT_EQ(s.runtime.events[0].kind, RuntimeEventSpec::Kind::kLinkFailure);
  EXPECT_EQ(s.runtime.events[0].param, RuntimeEventSpec::kBusiest);
  EXPECT_EQ(s.runtime.events[2].param, 4242u);
  EXPECT_EQ(s.runtime.events[4].param, 2u);
  EXPECT_EQ(s.runtime.fault_targets, (std::vector<std::uint32_t>{3, 5}));
  EXPECT_EQ(s.value_of("runtime.events"),
            "fail@1/0/busiest,restart@3/1,churn@5/2/4242,start@7/3,fail@9/0/2");

  ExperimentSpec reparsed;
  std::vector<std::string> lines;
  for (const auto& [key, value] : s.to_key_values())
    lines.push_back(key + "=" + value);
  reparsed.merge_from_flags(kv_flags(lines));
  EXPECT_EQ(s, reparsed);
}

TEST(RuntimeSpec, ValidateChecksKindApplicabilityAndEventBounds) {
  // runtime.* keys are inert outside experiment=runtime.
  ExperimentSpec distance;
  distance.merge_from_flags(kv_flags({"runtime.sessions=8"}));
  std::string error;
  EXPECT_FALSE(distance.validate(&error));
  EXPECT_NE(error.find("runtime.sessions"), std::string::npos) << error;
  EXPECT_NE(error.find("experiment=runtime"), std::string::npos) << error;

  // The objective keys are inert for the runtime (it builds its own
  // oracles per session kind).
  ExperimentSpec rt;
  rt.merge_from_flags(
      kv_flags({"experiment=runtime", "oracle-a=piecewise"}));
  EXPECT_FALSE(rt.validate(&error));
  EXPECT_NE(error.find("oracle-a"), std::string::npos) << error;

  // A declared timeline cannot reference sessions that will not exist.
  ExperimentSpec bounds;
  bounds.merge_from_flags(kv_flags({"experiment=runtime",
                                    "runtime.sessions=2",
                                    "runtime.events=churn@5/7/1"}));
  EXPECT_FALSE(bounds.validate(&error));
  EXPECT_NE(error.find("targets session 7"), std::string::npos) << error;
}

TEST(SweepDeathTest, MalformedTimelineExitsNamingTheKey) {
  const auto merge = [](const char* assignment) {
    ExperimentSpec s;
    s.merge_from_flags(util::Flags({assignment}));
  };
  EXPECT_EXIT(merge("runtime.events=explode@1/0"),
              ::testing::ExitedWithCode(2), "--runtime.events.*bad event");
  EXPECT_EXIT(merge("runtime.events=churn@5/0"), ::testing::ExitedWithCode(2),
              "--runtime.events");  // churn requires its reseed param
  EXPECT_EXIT(merge("runtime.fault-targets=1,x"),
              ::testing::ExitedWithCode(2), "--runtime.fault-targets");
}

TEST(RuntimeSpec, SpecTimelineReproducesTheFailureNegotiationExample) {
  // The acceptance scenario: the failure_negotiation example's recipe
  // (universe seed 11, 30 ISPs, a >=3-link pair, gravity A->B traffic, the
  // busiest interconnection failing mid-session) declared purely as spec
  // data — the same composition shipped in scenarios/runtime_failure.spec —
  // must reproduce the engine outcome of the in-process example run, and
  // bit-identically for every thread count.
  const char* const kSpecLines[] = {
      "experiment=runtime", "isps=30",           "seed=11",
      "pairs=1",            "traffic=gravity",   "runtime.min-links=3",
      "runtime.burst=2",    "runtime.events=fail@1/0/busiest",
  };
  ExperimentSpec spec;
  spec.merge_from_flags(kv_flags({kSpecLines, std::end(kSpecLines)}));
  std::string error;
  ASSERT_TRUE(spec.validate(&error)) << error;

  runtime::Scenario scenario(runtime_config_of(spec));
  const runtime::ScenarioReport report = scenario.run();
  ASSERT_EQ(report.sessions.size(), 2u);
  EXPECT_EQ(report.sessions[0].status, runtime::SessionStatus::kCancelled);
  const auto& reneg = report.sessions[1];
  ASSERT_EQ(reneg.kind, runtime::SessionKind::kFailureRenegotiation);
  ASSERT_EQ(reneg.status, runtime::SessionStatus::kDone) << reneg.error;

  // Reference: the example's computation — NegotiationEngine on the same
  // failure problem with bandwidth oracles and deterministic tie-breaks.
  const runtime::SessionWorld& world = scenario.world_of(1);
  core::NegotiationConfig ncfg;
  ncfg.tie_break = core::TieBreak::kDeterministic;
  ncfg.reassign_traffic_fraction = 0.05;
  core::BandwidthOracle ea(0, ncfg.preferences, world.capacities);
  core::BandwidthOracle eb(1, ncfg.preferences, world.capacities);
  core::NegotiationEngine engine(world.problem, ea, eb, ncfg);
  const auto expected = engine.run();
  EXPECT_EQ(reneg.outcome.assignment.ix_of_flow,
            expected.assignment.ix_of_flow);
  EXPECT_EQ(reneg.outcome.flows_moved, expected.flows_moved);
  for (std::size_t idx : world.problem.negotiable)
    EXPECT_NE(reneg.outcome.assignment.ix_of_flow[idx], world.failed_ix);

  // The whole timeline replays bit-identically on more workers.
  ExperimentSpec threaded = spec;
  threaded.merge_from_flags(kv_flags({"threads=4"}));
  const runtime::ScenarioReport parallel =
      runtime::run_scenario(runtime_config_of(threaded));
  EXPECT_EQ(runtime::outcome_digest(report),
            runtime::outcome_digest(parallel));
}

TEST(RuntimeSpec, RuntimeChurnPresetRunsFromTheRegistry) {
  const std::string json = temp_path(".json");
  EXPECT_EQ(run_scenario(*find_scenario("runtime_churn"),
                         kv_flags({"json=" + json})),
            0);
  const std::string record = read_file(json);
  EXPECT_NE(record.find("\"failure_renegotiations\": 1"), std::string::npos)
      << record;
  EXPECT_NE(record.find("\"churn_renegotiations\": 1"), std::string::npos)
      << record;
  EXPECT_NE(record.find("\"sessions_failed\": 1"), std::string::npos)
      << record;  // the declared black-hole transport fails cleanly
  std::remove(json.c_str());
}

// --- the self-documenting key registry -----------------------------------

TEST(SpecRegistry, MetadataCoversEverySerializedKeyExactly) {
  const ExperimentSpec defaults;
  std::vector<std::string> serialized;
  for (const auto& [key, value] : defaults.to_key_values())
    serialized.push_back(key);

  std::vector<std::string> registered;
  for (const SpecKeyInfo& info : spec_key_registry()) {
    if (!info.sweep_only) registered.push_back(info.key);
    EXPECT_FALSE(info.doc.empty()) << info.key;
    EXPECT_FALSE(info.type.empty()) << info.key;
    EXPECT_NE(info.kinds & kForAllKinds, 0u) << info.key;
    if (!info.sweep_only) {
      // Defaults in the docs are derived from the struct, never typed.
      EXPECT_EQ(info.default_value, defaults.value_of(info.key)) << info.key;
    } else {
      // Virtual axes belong to a registered scenario that owns them.
      const ScenarioPreset* owner = find_scenario(info.owner_scenario);
      ASSERT_NE(owner, nullptr) << info.key;
      EXPECT_NE(std::string(owner->own_axes).find(info.key),
                std::string::npos)
          << info.key;
    }
  }
  // Same keys, same canonical order: the registry cannot drift from the
  // serializer (and therefore neither can the generated reference).
  EXPECT_EQ(serialized, registered);
}

TEST(SpecRegistry, GeneratedReferenceMentionsEveryKeyAndIsMarkedGenerated) {
  std::ostringstream md;
  print_spec_reference_markdown(md);
  const std::string text = md.str();
  EXPECT_NE(text.find("GENERATED FILE"), std::string::npos);
  for (const SpecKeyInfo& info : spec_key_registry()) {
    const std::string cell =
        "| `" + (info.sweep_only ? "sweep." + info.key : info.key) + "` |";
    EXPECT_NE(text.find(cell), std::string::npos) << info.key;
    EXPECT_NE(text.find(info.doc.substr(0, 40)), std::string::npos)
        << info.key;
  }
  // Every axis-owning scenario is listed.
  for (const ScenarioPreset& preset : scenario_registry()) {
    if (preset.own_axes[0] == '\0') continue;
    EXPECT_NE(text.find("| `" + std::string(preset.name) + "` |"),
              std::string::npos)
        << preset.name;
  }

  std::ostringstream help;
  print_spec_help(help);
  for (const SpecKeyInfo& info : spec_key_registry())
    EXPECT_NE(help.str().find(info.sweep_only ? "sweep." + info.key
                                              : info.key),
              std::string::npos)
        << info.key;
}

}  // namespace
}  // namespace nexit::sim
