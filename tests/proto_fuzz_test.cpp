// Robustness of the frame decoder against hostile byte streams (seeded and
// deterministic, no libFuzzer dependency): random garbage, truncation at
// every boundary, and single-bit flips must produce clean failures or
// clean waits — never crashes, spurious frames, or over-reads.

#include <gtest/gtest.h>

#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "proto/snapshot_messages.hpp"
#include "util/rng.hpp"

namespace nexit::proto {
namespace {

Bytes random_bytes(util::Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_below(256));
  return b;
}

/// A valid multi-frame stream with random types/payloads.
Bytes valid_stream(util::Rng& rng, std::size_t frames,
                   std::vector<Frame>* out = nullptr) {
  Bytes stream;
  for (std::size_t i = 0; i < frames; ++i) {
    Frame f;
    f.type = static_cast<std::uint8_t>(rng.next_below(16));
    f.payload = random_bytes(rng, rng.next_below(200));
    if (out != nullptr) out->push_back(f);
    const Bytes encoded = encode_frame(f);
    stream.insert(stream.end(), encoded.begin(), encoded.end());
  }
  return stream;
}

TEST(ProtoFuzz, RandomGarbageNeverCrashesOrYieldsFrames) {
  util::Rng rng(0xf00d);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder d;
    d.feed(random_bytes(rng, rng.next_below(512)));
    std::size_t frames = 0;
    while (d.next().has_value()) ++frames;
    // A random stream virtually never begins with the NX magic + version +
    // a CRC-consistent frame; if the decoder did not fail it must simply be
    // waiting for more bytes, having produced nothing.
    if (!d.failed()) {
      EXPECT_EQ(frames, 0u);
    }
    // Either way the next read must stay clean (no crash, no frame).
    EXPECT_FALSE(d.next().has_value());
  }
}

TEST(ProtoFuzz, TruncationAtEveryBoundaryWaitsOrFailsCleanly) {
  util::Rng rng(0xcafe);
  std::vector<Frame> sent;
  const Bytes stream = valid_stream(rng, 3, &sent);
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder d;
    d.feed(stream.data(), cut);
    std::size_t decoded = 0;
    while (auto f = d.next()) {
      // Whatever decodes from a prefix must be a prefix of what was sent.
      ASSERT_LT(decoded, sent.size());
      EXPECT_EQ(f->type, sent[decoded].type);
      EXPECT_EQ(f->payload, sent[decoded].payload);
      ++decoded;
    }
    EXPECT_FALSE(d.failed()) << "truncation is not corruption (cut=" << cut
                             << ")";
    // Feeding the remainder completes the stream exactly.
    d.feed(stream.data() + cut, stream.size() - cut);
    while (auto f = d.next()) {
      ASSERT_LT(decoded, sent.size());
      EXPECT_EQ(f->payload, sent[decoded].payload);
      ++decoded;
    }
    EXPECT_EQ(decoded, sent.size());
    EXPECT_FALSE(d.failed());
  }
}

TEST(ProtoFuzz, SingleBitFlipsAreAlwaysCaught) {
  util::Rng rng(0xbeef);
  std::vector<Frame> sent;
  const Bytes stream = valid_stream(rng, 2, &sent);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes bad = stream;
    const std::size_t byte = rng.pick_index(bad.size());
    bad[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    FrameDecoder d;
    d.feed(bad);
    std::size_t decoded = 0;
    while (auto f = d.next()) {
      // Frames before the flipped byte decode intact; the flipped frame
      // itself must never surface (CRC32 catches every 1-bit error).
      ASSERT_LT(decoded, sent.size());
      EXPECT_EQ(f->payload, sent[decoded].payload);
      ++decoded;
    }
    // The flip cannot have produced MORE frames than were sent, and the
    // frame containing the flipped byte must not have been delivered
    // (header flips may also leave the decoder waiting for phantom bytes).
    const std::size_t flipped_frame =
        byte < encode_frame(sent[0]).size() ? 0u : 1u;
    EXPECT_LE(decoded, flipped_frame);
    if (!d.failed()) {
      EXPECT_FALSE(d.next().has_value());
    }
  }
}

TEST(ProtoFuzz, OversizedLengthFieldIsRejectedNotBuffered) {
  // A header advertising > kMaxPayload must poison the stream instead of
  // making the decoder wait for (and buffer) gigabytes.
  Frame f;
  f.payload = {1, 2, 3};
  Bytes b = encode_frame(f);
  b[4] = 0xff;  // little-endian length -> huge
  b[5] = 0xff;
  b[6] = 0xff;
  b[7] = 0x7f;
  FrameDecoder d;
  d.feed(b);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());
  EXPECT_NE(d.error().find("payload too large"), std::string::npos);
}

TEST(ProtoFuzz, GarbageAfterValidFramesPoisonsOnlyTheTail) {
  util::Rng rng(0x5eed);
  std::vector<Frame> sent;
  Bytes stream = valid_stream(rng, 2, &sent);
  const Bytes junk = random_bytes(rng, 64);
  stream.insert(stream.end(), junk.begin(), junk.end());
  FrameDecoder d;
  d.feed(stream);
  std::size_t decoded = 0;
  while (auto f = d.next()) {
    ASSERT_LT(decoded, sent.size());
    EXPECT_EQ(f->payload, sent[decoded].payload);
    ++decoded;
  }
  EXPECT_EQ(decoded, sent.size());
}

TEST(ProtoFuzz, RandomPayloadsSurviveMessageDecodeWithoutCrashing) {
  // One layer up: proto::decode_message on arbitrary frames must return an
  // error Result, not crash or throw something unexpected.
  util::Rng rng(0xd00d);
  for (int trial = 0; trial < 500; ++trial) {
    Frame f;
    f.type = static_cast<std::uint8_t>(rng.next_below(32));
    f.payload = random_bytes(rng, rng.next_below(128));
    const auto result = decode_message(f);
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty());
    }
  }
}

// --- durability records (proto/snapshot_messages) ---------------------------
// A stored journal is untrusted input just like wire bytes: any corruption
// of the snapshot/WAL stream must surface as a clean decode failure (which
// restore turns into a fresh negotiation), never as a *different* valid
// record — resuming wrong state would silently corrupt routing.

SnapshotCheckpoint fuzz_checkpoint(util::Rng& rng) {
  SnapshotCheckpoint cp;
  cp.session = static_cast<std::uint32_t>(rng.next_below(1u << 16));
  cp.status = 1;  // kRunning
  cp.attempts = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  cp.retries_used = static_cast<std::uint32_t>(rng.next_below(3));
  cp.steps = rng.next_below(1u << 20);
  cp.messages = rng.next_below(1u << 20);
  cp.timeouts = rng.next_below(8);
  cp.started_at = rng.next_below(1u << 10);
  cp.attempt_began = cp.started_at + rng.next_below(64);
  return cp;
}

SnapshotWalEvent fuzz_wal_event(util::Rng& rng) {
  SnapshotWalEvent ev;
  ev.kind = static_cast<std::uint8_t>(rng.next_below(4));
  ev.tick = rng.next_below(1u << 10);
  ev.pre_status = 1;
  ev.pre_attempts = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  ev.pre_steps = rng.next_below(1u << 20);
  ev.mark.live = 1;
  ev.mark.round = rng.next_below(64);
  ev.mark.true_gain_a = static_cast<double>(rng.next_below(1000)) / 8.0;
  for (std::size_t i = 0; i < 3 + rng.next_below(6); ++i)
    ev.mark.assignment.push_back(rng.next_below(4));
  if (ev.kind == 2) ev.note = "fuzz cancel";
  return ev;
}

/// A valid journal byte stream: one checkpoint frame + `events` WAL frames.
Bytes journal_stream(util::Rng& rng, std::size_t events,
                     SnapshotCheckpoint* cp_out = nullptr,
                     std::vector<SnapshotWalEvent>* ev_out = nullptr) {
  Bytes stream;
  const SnapshotCheckpoint cp = fuzz_checkpoint(rng);
  if (cp_out != nullptr) *cp_out = cp;
  const Bytes head = encode_frame(encode_snapshot_checkpoint(cp));
  stream.insert(stream.end(), head.begin(), head.end());
  for (std::size_t i = 0; i < events; ++i) {
    const SnapshotWalEvent ev = fuzz_wal_event(rng);
    if (ev_out != nullptr) ev_out->push_back(ev);
    const Bytes b = encode_frame(encode_snapshot_wal_event(ev));
    stream.insert(stream.end(), b.begin(), b.end());
  }
  return stream;
}

TEST(SnapshotFuzz, RandomGarbagePayloadsNeverCrashTheDecoders) {
  util::Rng rng(0x5a5a);
  for (int trial = 0; trial < 500; ++trial) {
    Frame f;
    f.type = static_cast<std::uint8_t>(
        rng.next_below(2) == 0
            ? SnapshotMessageType::kSnapshotCheckpoint
            : SnapshotMessageType::kSnapshotWalEvent);
    f.payload = random_bytes(rng, rng.next_below(256));
    const auto cp = decode_snapshot_checkpoint(f);
    if (!cp.ok()) {
      EXPECT_FALSE(cp.error().message.empty());
    }
    const auto ev = decode_snapshot_wal_event(f);
    if (!ev.ok()) {
      EXPECT_FALSE(ev.error().message.empty());
    }
  }
}

TEST(SnapshotFuzz, BitFlippedJournalNeverDecodesAsWrongData) {
  util::Rng rng(0x1dea);
  SnapshotCheckpoint cp;
  std::vector<SnapshotWalEvent> evs;
  const Bytes stream = journal_stream(rng, 3, &cp, &evs);
  for (int trial = 0; trial < 400; ++trial) {
    Bytes bad = stream;
    bad[rng.pick_index(bad.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    FrameDecoder d;
    d.feed(bad);
    std::size_t i = 0;
    while (auto f = d.next()) {
      // Whatever still decodes must be bit-identical to what was written;
      // the flipped frame itself must fail at the CRC or decode layer.
      if (i == 0) {
        const auto got = decode_snapshot_checkpoint(*f);
        if (got.ok()) {
          EXPECT_EQ(got.value(), cp);
        }
      } else {
        ASSERT_LE(i, evs.size());
        const auto got = decode_snapshot_wal_event(*f);
        if (got.ok()) {
          EXPECT_EQ(got.value(), evs[i - 1]);
        }
      }
      ++i;
    }
  }
}

TEST(SnapshotFuzz, TruncationAtEveryByteWaitsOrFailsCleanly) {
  util::Rng rng(0x7a11);
  SnapshotCheckpoint cp;
  std::vector<SnapshotWalEvent> evs;
  const Bytes stream = journal_stream(rng, 2, &cp, &evs);
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder d;
    d.feed(stream.data(), cut);
    std::size_t frames = 0;
    while (auto f = d.next()) {
      // A truncated journal yields only the complete prefix frames, and
      // each one decodes to exactly what was written (lost tail, never
      // altered data).
      if (frames == 0) {
        const auto got = decode_snapshot_checkpoint(*f);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), cp);
      } else {
        const auto got = decode_snapshot_wal_event(*f);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), evs[frames - 1]);
      }
      ++frames;
    }
    EXPECT_FALSE(d.failed()) << "truncation is not corruption (cut=" << cut
                             << ")";
  }
}

TEST(SnapshotFuzz, OversizedLengthOnSnapshotFramesIsRejected) {
  // The frame layer's kMaxPayload guard holds for the durability type
  // bytes too: a journal advertising a huge record poisons the decode
  // instead of buffering gigabytes.
  Frame f;
  f.type = static_cast<std::uint8_t>(SnapshotMessageType::kSnapshotWalEvent);
  f.payload = {9, 9, 9};
  Bytes b = encode_frame(f);
  b[4] = 0xff;
  b[5] = 0xff;
  b[6] = 0xff;
  b[7] = 0x7f;
  FrameDecoder d;
  d.feed(b);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());

  // And the in-payload assignment length guard: a mark claiming 2^20+
  // entries must be rejected before any allocation that size. Craft it by
  // patching the varint length inside a valid payload.
  util::Rng rng(0xfeed);
  SnapshotWalEvent ev = fuzz_wal_event(rng);
  ev.kind = 0;
  ev.note.clear();             // note length 0x00 is the payload's last byte
  ev.mark.assignment.clear();  // the length varint is then a single 0x00
  Frame valid = encode_snapshot_wal_event(ev);
  ASSERT_TRUE(decode_snapshot_wal_event(valid).ok());
  Frame huge = valid;
  // note is empty for kind != kCancel only when the note string is empty;
  // the assignment-length varint 0x00 is the last-but-one byte for empty
  // note (note length 0x00 is last). Patch it to a 5-byte varint > 2^20.
  ASSERT_GE(huge.payload.size(), 2u);
  const std::size_t at = huge.payload.size() - 2;
  ASSERT_EQ(huge.payload[at], 0x00);
  huge.payload[at] = 0xff;
  huge.payload.insert(huge.payload.begin() + static_cast<std::ptrdiff_t>(at) + 1,
                      {0xff, 0xff, 0xff, 0x0f});
  EXPECT_FALSE(decode_snapshot_wal_event(huge).ok());
}

}  // namespace
}  // namespace nexit::proto
