// Robustness of the frame decoder against hostile byte streams (seeded and
// deterministic, no libFuzzer dependency): random garbage, truncation at
// every boundary, and single-bit flips must produce clean failures or
// clean waits — never crashes, spurious frames, or over-reads.

#include <gtest/gtest.h>

#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "util/rng.hpp"

namespace nexit::proto {
namespace {

Bytes random_bytes(util::Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_below(256));
  return b;
}

/// A valid multi-frame stream with random types/payloads.
Bytes valid_stream(util::Rng& rng, std::size_t frames,
                   std::vector<Frame>* out = nullptr) {
  Bytes stream;
  for (std::size_t i = 0; i < frames; ++i) {
    Frame f;
    f.type = static_cast<std::uint8_t>(rng.next_below(16));
    f.payload = random_bytes(rng, rng.next_below(200));
    if (out != nullptr) out->push_back(f);
    const Bytes encoded = encode_frame(f);
    stream.insert(stream.end(), encoded.begin(), encoded.end());
  }
  return stream;
}

TEST(ProtoFuzz, RandomGarbageNeverCrashesOrYieldsFrames) {
  util::Rng rng(0xf00d);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder d;
    d.feed(random_bytes(rng, rng.next_below(512)));
    std::size_t frames = 0;
    while (d.next().has_value()) ++frames;
    // A random stream virtually never begins with the NX magic + version +
    // a CRC-consistent frame; if the decoder did not fail it must simply be
    // waiting for more bytes, having produced nothing.
    if (!d.failed()) {
      EXPECT_EQ(frames, 0u);
    }
    // Either way the next read must stay clean (no crash, no frame).
    EXPECT_FALSE(d.next().has_value());
  }
}

TEST(ProtoFuzz, TruncationAtEveryBoundaryWaitsOrFailsCleanly) {
  util::Rng rng(0xcafe);
  std::vector<Frame> sent;
  const Bytes stream = valid_stream(rng, 3, &sent);
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder d;
    d.feed(stream.data(), cut);
    std::size_t decoded = 0;
    while (auto f = d.next()) {
      // Whatever decodes from a prefix must be a prefix of what was sent.
      ASSERT_LT(decoded, sent.size());
      EXPECT_EQ(f->type, sent[decoded].type);
      EXPECT_EQ(f->payload, sent[decoded].payload);
      ++decoded;
    }
    EXPECT_FALSE(d.failed()) << "truncation is not corruption (cut=" << cut
                             << ")";
    // Feeding the remainder completes the stream exactly.
    d.feed(stream.data() + cut, stream.size() - cut);
    while (auto f = d.next()) {
      ASSERT_LT(decoded, sent.size());
      EXPECT_EQ(f->payload, sent[decoded].payload);
      ++decoded;
    }
    EXPECT_EQ(decoded, sent.size());
    EXPECT_FALSE(d.failed());
  }
}

TEST(ProtoFuzz, SingleBitFlipsAreAlwaysCaught) {
  util::Rng rng(0xbeef);
  std::vector<Frame> sent;
  const Bytes stream = valid_stream(rng, 2, &sent);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes bad = stream;
    const std::size_t byte = rng.pick_index(bad.size());
    bad[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    FrameDecoder d;
    d.feed(bad);
    std::size_t decoded = 0;
    while (auto f = d.next()) {
      // Frames before the flipped byte decode intact; the flipped frame
      // itself must never surface (CRC32 catches every 1-bit error).
      ASSERT_LT(decoded, sent.size());
      EXPECT_EQ(f->payload, sent[decoded].payload);
      ++decoded;
    }
    // The flip cannot have produced MORE frames than were sent, and the
    // frame containing the flipped byte must not have been delivered
    // (header flips may also leave the decoder waiting for phantom bytes).
    const std::size_t flipped_frame =
        byte < encode_frame(sent[0]).size() ? 0u : 1u;
    EXPECT_LE(decoded, flipped_frame);
    if (!d.failed()) {
      EXPECT_FALSE(d.next().has_value());
    }
  }
}

TEST(ProtoFuzz, OversizedLengthFieldIsRejectedNotBuffered) {
  // A header advertising > kMaxPayload must poison the stream instead of
  // making the decoder wait for (and buffer) gigabytes.
  Frame f;
  f.payload = {1, 2, 3};
  Bytes b = encode_frame(f);
  b[4] = 0xff;  // little-endian length -> huge
  b[5] = 0xff;
  b[6] = 0xff;
  b[7] = 0x7f;
  FrameDecoder d;
  d.feed(b);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());
  EXPECT_NE(d.error().find("payload too large"), std::string::npos);
}

TEST(ProtoFuzz, GarbageAfterValidFramesPoisonsOnlyTheTail) {
  util::Rng rng(0x5eed);
  std::vector<Frame> sent;
  Bytes stream = valid_stream(rng, 2, &sent);
  const Bytes junk = random_bytes(rng, 64);
  stream.insert(stream.end(), junk.begin(), junk.end());
  FrameDecoder d;
  d.feed(stream);
  std::size_t decoded = 0;
  while (auto f = d.next()) {
    ASSERT_LT(decoded, sent.size());
    EXPECT_EQ(f->payload, sent[decoded].payload);
    ++decoded;
  }
  EXPECT_EQ(decoded, sent.size());
}

TEST(ProtoFuzz, RandomPayloadsSurviveMessageDecodeWithoutCrashing) {
  // One layer up: proto::decode_message on arbitrary frames must return an
  // error Result, not crash or throw something unexpected.
  util::Rng rng(0xd00d);
  for (int trial = 0; trial < 500; ++trial) {
    Frame f;
    f.type = static_cast<std::uint8_t>(rng.next_below(32));
    f.payload = random_bytes(rng, rng.next_below(128));
    const auto result = decode_message(f);
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty());
    }
  }
}

}  // namespace
}  // namespace nexit::proto
