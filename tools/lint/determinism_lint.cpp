// determinism_lint — scans src/, bench/, and examples/ for code patterns
// that break the repo's bit-identity contract (see lint_core.hpp for the
// rules and the allow-annotation grammar). Beyond the line-local rules it
// runs cross-TU passes over a whole-program call graph. Run as a CTest
// test (label `lint`) and as a CI gate:
//
//   determinism_lint [--root=DIR] [--show-allowed] [passes] [files...]
//   determinism_lint --list-rules[=markdown]
//   determinism_lint --list-passes[=markdown]
//
// Passes (line-local rules always run):
//   --taint        cross-TU source->sink determinism-taint propagation
//   --locks        lock-order + unguarded worker-lambda writes
//   --dead-keys    spec_key_registry entries nothing reads
//   --all-passes   all of the above
//
// Outputs:
//   --callgraph=FILE   write the indexed call graph as Graphviz DOT
//   --sarif=FILE       write findings (incl. suppressed) as SARIF 2.1.0
//   --format=sarif     print SARIF to stdout instead of the text report
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"
#include "lint_graph.hpp"
#include "lint_sarif.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void print_rules_text() {
  std::cout << "determinism_lint rules (suppress with "
               "`// nexit-lint: allow(<rule>): <reason>`):\n\n";
  for (const auto& r : nexit::lint::rule_table()) {
    std::cout << "  " << r.name << "\n    flags: " << r.summary
              << "\n    why:   " << r.rationale << "\n\n";
  }
}

void print_rules_markdown() {
  std::cout << "| Rule | What it flags | Why it is a hazard |\n"
            << "| --- | --- | --- |\n";
  for (const auto& r : nexit::lint::rule_table()) {
    std::cout << "| `" << r.name << "` | " << r.summary << " | " << r.rationale
              << " |\n";
  }
}

struct PassDoc {
  const char* flag;
  const char* name;
  const char* what;
};

/// The multi-pass pipeline, in execution order. Kept here (not in
/// lint_core) because it documents CLI surface: which flag enables what.
const PassDoc kPasses[] = {
    {"(always)", "line rules",
     "the five line-local hazard rules plus the allow()-annotation "
     "meta-rules (bad-allow, stale-allow)"},
    {"(on demand)", "call-graph indexer",
     "heuristic symbol index of every function definition (qualified "
     "names, overload sets) and call site across src/ + bench/ + "
     "examples/; export with --callgraph=FILE.dot, consumed by the passes "
     "below"},
    {"--taint", "determinism taint",
     "propagates nondeterminism sources (obs::WallClock, raw entropy, "
     "pointer-to-int casts, thread ids, unordered iteration order) through "
     "locals and function return values across TUs into digest/metric/"
     "output sinks; findings report the full source -> sink call chain and "
     "are waivable only at the source line (rule: taint-flow)"},
    {"--locks", "lock discipline",
     "per-function mutex-acquisition order, flagging pairs acquired in "
     "opposite orders (rule: lock-order) and writes to shared state in "
     "ThreadPool worker lambdas with no lock/atomic in scope (rule: "
     "unguarded-write)"},
    {"--dead-keys", "dead spec keys",
     "every key in sim::spec_key_registry must be read by some flags/spec "
     "accessor outside bench//examples/ shims (rule: dead-spec-key)"},
};

void print_passes_text() {
  std::cout << "determinism_lint passes (--all-passes enables every "
               "opt-in pass):\n\n";
  for (const auto& p : kPasses) {
    std::cout << "  " << p.name << " [" << p.flag << "]\n    " << p.what
              << "\n\n";
  }
}

void print_passes_markdown() {
  std::cout << "| Pass | Flag | What it does |\n| --- | --- | --- |\n";
  for (const auto& p : kPasses) {
    std::cout << "| " << p.name << " | `" << p.flag << "` | " << p.what
              << " |\n";
  }
}

/// Repo-relative label when the file is under root, else the path as-is.
std::string label_of(const fs::path& file, const fs::path& root) {
  const std::string f = file.lexically_normal().generic_string();
  const std::string r = root.lexically_normal().generic_string();
  if (f.size() > r.size() + 1 && f.compare(0, r.size(), r) == 0 &&
      f[r.size()] == '/')
    return f.substr(r.size() + 1);
  return f;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool show_allowed = false;
  bool sarif_stdout = false;
  std::string callgraph_file;
  std::string sarif_file;
  nexit::lint::ProjectOptions opts;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules_text();
      return 0;
    }
    if (arg == "--list-rules=markdown") {
      print_rules_markdown();
      return 0;
    }
    if (arg == "--list-passes") {
      print_passes_text();
      return 0;
    }
    if (arg == "--list-passes=markdown") {
      print_passes_markdown();
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--show-allowed") {
      show_allowed = true;
    } else if (arg == "--taint") {
      opts.taint = true;
    } else if (arg == "--locks") {
      opts.locks = true;
    } else if (arg == "--dead-keys") {
      opts.dead_keys = true;
    } else if (arg == "--all-passes") {
      opts.taint = opts.locks = opts.dead_keys = true;
    } else if (arg.rfind("--callgraph=", 0) == 0) {
      callgraph_file = arg.substr(12);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_file = arg.substr(8);
    } else if (arg == "--format=sarif") {
      sarif_stdout = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "determinism_lint: unknown flag " << arg
                << " (flags: --root=DIR --list-rules[=markdown] "
                   "--list-passes[=markdown] --show-allowed --taint --locks "
                   "--dead-keys --all-passes --callgraph=FILE --sarif=FILE "
                   "--format=sarif)\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }

  if (inputs.empty()) {
    for (const char* dir : {"src", "bench", "examples"}) {
      const fs::path d = root / dir;
      if (!fs::exists(d)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(d)) {
        if (entry.is_regular_file() && lintable(entry.path()))
          inputs.push_back(entry.path());
      }
    }
    if (inputs.empty()) {
      std::cerr << "determinism_lint: nothing to scan under "
                << root.generic_string() << " (src/, bench/, examples/)\n";
      return 2;
    }
  }
  // Deterministic scan order, of course.
  std::sort(inputs.begin(), inputs.end(),
            [&](const fs::path& a, const fs::path& b) {
              return label_of(a, root) < label_of(b, root);
            });

  std::vector<nexit::lint::SourceFile> files;
  files.reserve(inputs.size());
  for (const fs::path& file : inputs) {
    if (!fs::exists(file)) {
      std::cerr << "determinism_lint: no such file: " << file.generic_string()
                << "\n";
      return 2;
    }
    nexit::lint::SourceFile sf;
    sf.path = label_of(file, root);
    sf.content = read_file(file);
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      fs::path hdr = file;
      hdr.replace_extension(".hpp");
      if (fs::exists(hdr)) sf.sibling_header = read_file(hdr);
    }
    files.push_back(std::move(sf));
  }

  if (!callgraph_file.empty()) {
    const auto graph = nexit::lint::build_call_graph(files);
    std::ofstream out(callgraph_file, std::ios::binary);
    if (!out.good()) {
      std::cerr << "determinism_lint: cannot write " << callgraph_file << "\n";
      return 2;
    }
    out << nexit::lint::to_dot(graph, files);
  }

  const std::vector<nexit::lint::Finding> findings =
      nexit::lint::lint_project(files, opts);

  if (!sarif_file.empty()) {
    std::ofstream out(sarif_file, std::ios::binary);
    if (!out.good()) {
      std::cerr << "determinism_lint: cannot write " << sarif_file << "\n";
      return 2;
    }
    out << nexit::lint::to_sarif(findings);
  }

  std::size_t reported = 0, suppressed = 0;
  for (const auto& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      if (show_allowed && !sarif_stdout) {
        std::cout << f.file << ":" << f.line << ": [allowed " << f.rule
                  << "] " << f.allow_reason << "\n";
      }
      continue;
    }
    ++reported;
    if (!sarif_stdout) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  if (sarif_stdout) {
    std::cout << nexit::lint::to_sarif(findings);
    std::cerr << "determinism_lint: " << files.size() << " files, "
              << reported << " finding" << (reported == 1 ? "" : "s") << ", "
              << suppressed << " allowed by annotation\n";
  } else {
    std::cout << "determinism_lint: " << files.size() << " files, "
              << reported << " finding" << (reported == 1 ? "" : "s") << ", "
              << suppressed << " allowed by annotation\n";
  }
  return reported == 0 ? 0 : 1;
}
