// determinism_lint — scans src/, bench/, and examples/ for code patterns
// that break the repo's bit-identity contract (see lint_core.hpp for the
// rules and the allow-annotation grammar). Run as a CTest test (label
// `lint`) and as a CI gate:
//
//   determinism_lint [--root=DIR] [--show-allowed] [files...]
//   determinism_lint --list-rules[=markdown]
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void print_rules_text() {
  std::cout << "determinism_lint rules (suppress with "
               "`// nexit-lint: allow(<rule>): <reason>`):\n\n";
  for (const auto& r : nexit::lint::rule_table()) {
    std::cout << "  " << r.name << "\n    flags: " << r.summary
              << "\n    why:   " << r.rationale << "\n\n";
  }
}

void print_rules_markdown() {
  std::cout << "| Rule | What it flags | Why it is a hazard |\n"
            << "| --- | --- | --- |\n";
  for (const auto& r : nexit::lint::rule_table()) {
    std::cout << "| `" << r.name << "` | " << r.summary << " | " << r.rationale
              << " |\n";
  }
}

/// Repo-relative label when the file is under root, else the path as-is.
std::string label_of(const fs::path& file, const fs::path& root) {
  const std::string f = file.lexically_normal().generic_string();
  const std::string r = root.lexically_normal().generic_string();
  if (f.size() > r.size() + 1 && f.compare(0, r.size(), r) == 0 &&
      f[r.size()] == '/')
    return f.substr(r.size() + 1);
  return f;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool show_allowed = false;
  std::vector<fs::path> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules_text();
      return 0;
    }
    if (arg == "--list-rules=markdown") {
      print_rules_markdown();
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--show-allowed") {
      show_allowed = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "determinism_lint: unknown flag " << arg
                << " (flags: --root=DIR --list-rules[=markdown] "
                   "--show-allowed)\n";
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  if (files.empty()) {
    for (const char* dir : {"src", "bench", "examples"}) {
      const fs::path d = root / dir;
      if (!fs::exists(d)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(d)) {
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path());
      }
    }
    if (files.empty()) {
      std::cerr << "determinism_lint: nothing to scan under "
                << root.generic_string() << " (src/, bench/, examples/)\n";
      return 2;
    }
  }
  // Deterministic scan order, of course.
  std::sort(files.begin(), files.end(),
            [&](const fs::path& a, const fs::path& b) {
              return label_of(a, root) < label_of(b, root);
            });

  std::size_t reported = 0, suppressed = 0;
  for (const fs::path& file : files) {
    if (!fs::exists(file)) {
      std::cerr << "determinism_lint: no such file: " << file.generic_string()
                << "\n";
      return 2;
    }
    std::string sibling;
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      fs::path hdr = file;
      hdr.replace_extension(".hpp");
      if (fs::exists(hdr)) sibling = read_file(hdr);
    }
    const std::string label = label_of(file, root);
    for (const auto& f :
         nexit::lint::lint_source(label, read_file(file), sibling)) {
      if (f.suppressed) {
        ++suppressed;
        if (show_allowed) {
          std::cout << f.file << ":" << f.line << ": [allowed " << f.rule
                    << "] " << f.allow_reason << "\n";
        }
        continue;
      }
      ++reported;
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  std::cout << "determinism_lint: " << files.size() << " files, " << reported
            << " finding" << (reported == 1 ? "" : "s") << ", " << suppressed
            << " allowed by annotation\n";
  return reported == 0 ? 0 : 1;
}
