#pragma once

// SARIF 2.1.0 serialization of lint findings, for GitHub code-scanning
// upload. One run, one driver (determinism_lint), the full rule table as
// reportingDescriptors, and every finding as a result — suppressed ones
// carry an inSource suppression with the allow() reason, so the audit
// trail survives into the scanning UI.

#include <string>
#include <vector>

#include "lint_core.hpp"

namespace nexit::lint {

/// File labels are emitted as-is into artifactLocation URIs (the CLI hands
/// them over repo-relative).
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace nexit::lint
