#include "lint_text.hpp"

#include <algorithm>
#include <cctype>

namespace nexit::lint {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && is_space(s[i])) ++i;
  return i;
}

std::size_t prev_nonspace(const std::string& s, std::size_t i) {
  while (i > 0) {
    --i;
    if (!is_space(s[i])) return i;
  }
  return std::string::npos;
}

std::size_t find_matching(const std::string& s, std::size_t open, char open_ch,
                          char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == open_ch) ++depth;
    else if (s[i] == close_ch && --depth == 0) return i;
  }
  return std::string::npos;
}

std::string trim_copy(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool member_access_before(const std::string& s, std::size_t tok_begin) {
  std::size_t p = prev_nonspace(s, tok_begin);
  if (p == std::string::npos) return false;
  if (s[p] == '.') return true;
  return s[p] == '>' && p > 0 && s[p - 1] == '-';
}

std::vector<Token> tokenize(const std::string& s) {
  std::vector<Token> out;
  for (std::size_t i = 0; i < s.size();) {
    if (ident_start(s[i]) && (i == 0 || !ident_char(s[i - 1]))) {
      std::size_t e = i;
      while (e < s.size() && ident_char(s[e])) ++e;
      out.push_back({s.substr(i, e - i), i, e});
      i = e;
    } else {
      ++i;
    }
  }
  return out;
}

LineIndex::LineIndex(const std::string& s) {
  starts_.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s[i] == '\n') starts_.push_back(i + 1);
}

int LineIndex::line_of(std::size_t pos) const {
  auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  return static_cast<int>(it - starts_.begin());
}

}  // namespace nexit::lint
