#pragma once

// The cross-TU passes of the determinism lint, each built on the call
// graph of lint_graph.hpp. Called from lint_project() in lint_core.cpp;
// findings they append flow through the same allow()/stale-allow machinery
// as the line-local rules.

#include <string>
#include <vector>

#include "lint_core.hpp"
#include "lint_graph.hpp"

namespace nexit::lint {

/// Pass 2: determinism-taint propagation. Sources (obs::WallClock reads,
/// raw entropy, pointer-to-integer casts, std::this_thread::get_id,
/// unordered-container iteration order) propagate through local variables,
/// return values, and call edges; a finding fires when a tainted value
/// reaches a digest/metric/output sink, anchored at the SOURCE line (the
/// only place an allow(taint-flow) can waive it) and reporting the full
/// source -> ... -> sink call chain in the message.
void run_taint_pass(const std::vector<SourceFile>& files,
                    const CallGraph& graph, std::vector<Finding>& findings);

/// Pass 3: lock discipline. Per-function mutex-acquisition order is
/// recorded; a pair of mutexes acquired in opposite orders by two
/// functions is flagged in both (lock-order). Writes to captured/shared
/// state inside ThreadPool worker lambdas (submit / parallel_for) with no
/// lock or atomic in scope are flagged too (unguarded-write); writes to
/// locals declared inside the lambda and index-addressed slot writes
/// (`out[i] = ...`, the sanctioned sharding pattern) are exempt.
void run_lock_pass(const std::vector<SourceFile>& files,
                   const CallGraph& graph, std::vector<Finding>& findings);

/// dead-spec-key: every key registered in sim::spec_key_registry (the
/// KeyDoc table and sweep_only() entries) must be read somewhere via a
/// flags/spec accessor; an entry that only serializes is flagged at its
/// registry line.
void run_dead_key_pass(const std::vector<SourceFile>& files,
                       std::vector<Finding>& findings);

}  // namespace nexit::lint
