// Pass 3 of the determinism lint: lock discipline.
//
// lock-order: per function, the sequence of distinct mutexes acquired
// (std::lock_guard / std::unique_lock constructions and explicit .lock()
// calls; std::scoped_lock acquires atomically and is excluded from
// ordering). Mutex identity is heuristic: the spelled argument expression,
// qualified by the enclosing class (from the call graph's qualified
// function names) for member-looking mutexes and by file for free ones.
// Two functions acquiring the same pair in opposite orders are both
// flagged at their second acquisition — the classic ABBA deadlock shape.
//
// unguarded-write: writes to shared state inside worker lambdas handed to
// ThreadPool (submit / parallel_for) with no lock/atomic in scope.
// Writes to variables declared inside the lambda and index-addressed slot
// writes (`out[i] = ...` — the sanctioned sharding pattern, each worker
// owns its slot) are exempt, as is any lambda that takes a lock or
// touches an atomic.

#include <map>
#include <set>
#include <tuple>

#include "lint_passes.hpp"
#include "lint_text.hpp"

namespace nexit::lint {
namespace {

const char* const kLockOrder = "lock-order";
const char* const kUnguardedWrite = "unguarded-write";

struct Acquisition {
  std::string key;  // normalized mutex identity
  int line = 0;
};

std::string strip_spaces(const std::string& s) {
  std::string out;
  for (char c : s)
    if (!is_space(c)) out += c;
  return out;
}

/// Class prefix of a qualified function name ("a::B::f" -> "a::B").
std::string owner_prefix(const std::string& qualified) {
  const std::size_t at = qualified.rfind("::");
  return at == std::string::npos ? std::string() : qualified.substr(0, at);
}

/// Normalized identity of a mutex expression acquired inside `fn`:
/// member-style names attach to the enclosing class, free names to the
/// file, and already-qualified names stand alone.
std::string mutex_key(std::string expr, const FunctionDef& fn,
                      const std::string& path) {
  expr = strip_spaces(expr);
  if (expr.rfind("this->", 0) == 0) expr = expr.substr(6);
  if (!expr.empty() && expr[0] == '*') expr = expr.substr(1);
  if (expr.find("::") != std::string::npos) return expr;
  const std::string owner = owner_prefix(fn.qualified);
  if (!owner.empty()) return owner + "::" + expr;
  return path + "::" + expr;
}

/// Mutex-acquisition sequence of one function body, in program order,
/// first acquisition per distinct mutex.
std::vector<Acquisition> acquisitions(const std::string& s,
                                      const FunctionDef& fn,
                                      const std::string& path,
                                      const LineIndex& lines) {
  std::vector<Acquisition> out;
  std::set<std::string> seen;
  auto add = [&](const std::string& expr, std::size_t pos) {
    const std::string key = mutex_key(expr, fn, path);
    if (key.empty() || !seen.insert(key).second) return;
    out.push_back({key, lines.line_of(pos)});
  };
  for (const Token& t : tokenize(s)) {
    if (t.begin <= fn.body_begin || t.end >= fn.body_end) continue;
    if (t.text == "lock_guard" || t.text == "unique_lock") {
      std::size_t p = skip_ws(s, t.end);
      if (p < s.size() && s[p] == '<') {
        const std::size_t close = find_matching(s, p, '<', '>');
        if (close == std::string::npos) continue;
        p = skip_ws(s, close + 1);
      }
      // Guard variable name, then the ctor argument list.
      while (p < s.size() && ident_char(s[p])) ++p;
      p = skip_ws(s, p);
      if (p >= s.size() || s[p] != '(') continue;
      const std::size_t close = find_matching(s, p, '(', ')');
      if (close == std::string::npos) continue;
      // First ctor argument only (a deferred/adopt tag would follow it).
      std::string arg = s.substr(p + 1, close - p - 1);
      const std::size_t comma = arg.find(',');
      if (comma != std::string::npos) arg = arg.substr(0, comma);
      add(arg, t.begin);
      continue;
    }
    if (t.text == "lock" && !member_access_before(s, t.begin)) continue;
    if (t.text == "lock") {
      const std::size_t p = skip_ws(s, t.end);
      if (p >= s.size() || s[p] != '(') continue;
      // Walk back over `expr.` / `expr->`: the locked object.
      std::size_t e = prev_nonspace(s, t.begin);  // '.' or '>'
      if (e == std::string::npos) continue;
      if (s[e] == '>' && e > 0 && s[e - 1] == '-') --e;
      std::size_t b = e;  // now at the separator
      while (b > 0 && (ident_char(s[b - 1]) || s[b - 1] == '_')) --b;
      if (b == e) continue;
      add(s.substr(b, e - b), t.begin);
    }
  }
  return out;
}

void lock_order(const std::vector<SourceFile>& files, const CallGraph& graph,
                std::vector<Finding>& findings) {
  struct Witness {
    int fn = -1;
    int line = 0;  // of the second acquisition
  };
  // (first, second) -> first function observed acquiring in that order.
  std::map<std::pair<std::string, std::string>, Witness> order;
  std::vector<LineIndex> lines;
  for (const std::string& s : graph.sanitized) lines.emplace_back(s);

  std::set<std::tuple<int, int>> flagged;  // (fn, line) dedup
  for (std::size_t fi = 0; fi < graph.functions.size(); ++fi) {
    const FunctionDef& fn = graph.functions[fi];
    const std::vector<Acquisition> acq = acquisitions(
        graph.sanitized[fn.file], fn, files[fn.file].path, lines[fn.file]);
    for (std::size_t a = 0; a < acq.size(); ++a) {
      for (std::size_t b = a + 1; b < acq.size(); ++b) {
        const auto fwd = std::make_pair(acq[a].key, acq[b].key);
        const auto rev = std::make_pair(acq[b].key, acq[a].key);
        const auto inv = order.find(rev);
        if (inv != order.end()) {
          const FunctionDef& other = graph.functions[inv->second.fn];
          auto flag = [&](const FunctionDef& in, int line,
                          const FunctionDef& vs) {
            if (!flagged.insert({static_cast<int>(&in - graph.functions.data()),
                                 line})
                     .second)
              return;
            findings.push_back(
                {files[in.file].path, line, kLockOrder,
                 "`" + in.qualified + "` acquires `" + acq[a].key + "` and `" +
                     acq[b].key + "` in the opposite order of `" +
                     vs.qualified + "` (" + files[vs.file].path +
                     ") — inconsistent pairwise lock order can deadlock",
                 false, ""});
          };
          flag(fn, acq[b].line, other);
          flag(other, inv->second.line, fn);
        }
        if (order.find(fwd) == order.end())
          order[fwd] = {static_cast<int>(fi), acq[b].line};
      }
    }
  }
}

/// Names declared inside `body` (heuristic: `auto x =`, `T x =`, `T x;`-less
/// forms are rare in lambdas; also harvests for-loop induction variables
/// and structured bindings).
std::set<std::string> lambda_locals(const std::string& body) {
  std::set<std::string> locals;
  const std::vector<Token> toks = tokenize(body);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& a = toks[i];
    const Token& b = toks[i + 1];
    // Two adjacent identifiers where the second is followed by `=`, `;`,
    // `{`, `(`, `:` (range-for) — `a` is a type, `b` the declared name.
    if (b.begin < a.end + 1) continue;
    bool adjacent = true;
    for (std::size_t k = a.end; k < b.begin; ++k) {
      const char c = body[k];
      if (!is_space(c) && c != '&' && c != '*' && c != ':' && c != '<' &&
          c != '>' && c != ',') {
        adjacent = false;
        break;
      }
    }
    if (!adjacent) continue;
    const std::size_t after = skip_ws(body, b.end);
    if (after < body.size() &&
        (body[after] == '=' || body[after] == ';' || body[after] == '{' ||
         body[after] == ':' || body[after] == ')'))
      locals.insert(b.text);
  }
  return locals;
}

void unguarded_writes(const std::vector<SourceFile>& files,
                      const CallGraph& graph,
                      std::vector<Finding>& findings) {
  std::vector<LineIndex> lines;
  for (const std::string& s : graph.sanitized) lines.emplace_back(s);
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& s = graph.sanitized[fi];
    for (const Token& t : tokenize(s)) {
      if (t.text != "submit" && t.text != "parallel_for") continue;
      const std::size_t open = skip_ws(s, t.end);
      if (open >= s.size() || s[open] != '(') continue;
      const std::size_t close = find_matching(s, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::string args = s.substr(open + 1, close - open - 1);
      // The worker lambda: a `[` that is a lambda introducer with a
      // by-reference capture (by-value captures cannot write shared state).
      std::size_t lb = std::string::npos;
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != '[') continue;
        const std::size_t prev = prev_nonspace(args, i);
        if (prev != std::string::npos &&
            (ident_char(args[prev]) || args[prev] == ')' ||
             args[prev] == ']'))
          continue;  // subscript
        lb = i;
        break;
      }
      if (lb == std::string::npos) continue;
      const std::size_t cap_close = find_matching(args, lb, '[', ']');
      if (cap_close == std::string::npos) continue;
      if (args.substr(lb, cap_close - lb + 1).find('&') == std::string::npos)
        continue;
      std::size_t p = skip_ws(args, cap_close + 1);
      std::set<std::string> params;
      if (p < args.size() && args[p] == '(') {
        const std::size_t pc = find_matching(args, p, '(', ')');
        if (pc == std::string::npos) continue;
        for (const Token& pt : tokenize(args.substr(p + 1, pc - p - 1)))
          params.insert(pt.text);
        p = pc + 1;
      }
      const std::size_t bb = args.find('{', p);
      if (bb == std::string::npos) continue;
      const std::size_t bc = find_matching(args, bb, '{', '}');
      if (bc == std::string::npos) continue;
      const std::string body = args.substr(bb + 1, bc - bb - 1);
      // A lambda that locks or uses atomics is doing its own discipline.
      bool guarded = false;
      for (const Token& bt : tokenize(body))
        guarded |= bt.text == "lock_guard" || bt.text == "unique_lock" ||
                   bt.text == "scoped_lock" || bt.text == "lock" ||
                   bt.text == "atomic" || bt.text == "fetch_add" ||
                   bt.text == "fetch_sub" || bt.text == "store" ||
                   bt.text == "exchange" || bt.text == "compare_exchange_weak" ||
                   bt.text == "compare_exchange_strong";
      if (guarded) continue;
      const std::set<std::string> locals = lambda_locals(body);
      // Writes: `x = ...` / `x += ...` / `++x` / `x++` where x is neither a
      // lambda local, a parameter, nor a subscripted slot.
      const std::size_t body_abs = open + 1 + bb + 1;
      int depth = 0;
      for (std::size_t i = 0; i < body.size(); ++i) {
        const char c = body[i];
        if (c == '(' || c == '[') ++depth;
        else if (c == ')' || c == ']') --depth;
        bool is_write = false;
        std::size_t lhs_end = std::string::npos;
        if (c == '=' && depth == 0) {
          const char prev = i > 0 ? body[i - 1] : '\0';
          const char next = i + 1 < body.size() ? body[i + 1] : '\0';
          if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
              prev == '>')
            continue;
          const bool compound = prev == '+' || prev == '-' || prev == '*' ||
                                prev == '/' || prev == '%' || prev == '&' ||
                                prev == '|' || prev == '^';
          lhs_end = prev_nonspace(body, compound ? i - 1 : i);
          is_write = true;
        } else if ((c == '+' || c == '-') && i + 1 < body.size() &&
                   body[i + 1] == c) {
          // ++x / x++ — treat the adjacent identifier as written.
          std::size_t e = prev_nonspace(body, i);
          if (e != std::string::npos && ident_char(body[e])) {
            lhs_end = e;
            is_write = true;
          } else {
            const std::size_t q = skip_ws(body, i + 2);
            if (q < body.size() && ident_start(body[q])) {
              std::size_t qe = q;
              while (qe < body.size() && ident_char(body[qe])) ++qe;
              lhs_end = qe - 1;
              is_write = true;
            }
          }
          ++i;  // skip the second + / -
        }
        if (!is_write || lhs_end == std::string::npos ||
            !ident_char(body[lhs_end]))
          continue;
        std::size_t b = lhs_end;
        while (b > 0 && ident_char(body[b - 1])) --b;
        const std::string name = body.substr(b, lhs_end - b + 1);
        if (locals.count(name) != 0 || params.count(name) != 0) continue;
        const std::size_t before = prev_nonspace(body, b);
        if (before != std::string::npos && body[before] == ']')
          continue;  // member of a subscripted slot: out[i].field = ...
        // Declaration on the same statement (e.g. `auto x = ...`)?
        // lambda_locals caught those; a leading subscript means a slot
        // write, the sanctioned sharding pattern.
        bool subscripted = false;
        std::size_t q = lhs_end + 1;
        q = skip_ws(body, q);
        if (q < body.size() && body[q] == '[') subscripted = true;
        if (subscripted) continue;
        findings.push_back(
            {files[fi].path, lines[fi].line_of(body_abs + b),
             kUnguardedWrite,
             "write to `" + name + "` inside a ThreadPool worker lambda "
             "with no lock or atomic in scope — racy, and the winner is "
             "schedule-dependent; guard it, make it atomic, or give each "
             "worker its own slot",
             false, ""});
      }
    }
  }
}

}  // namespace

void run_lock_pass(const std::vector<SourceFile>& files,
                   const CallGraph& graph, std::vector<Finding>& findings) {
  lock_order(files, graph, findings);
  unguarded_writes(files, graph, findings);
}

}  // namespace nexit::lint
