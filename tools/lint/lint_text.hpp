#pragma once

// Token-level text utilities shared by every pass of the determinism lint
// (the line-local rules in lint_core.cpp, the call-graph indexer in
// lint_graph.cpp, and the cross-TU passes built on it). Extracted from
// lint_core.cpp when the lint grew from a line-local scanner into a
// multi-pass analysis, so the passes agree on one tokenizer.

#include <cstddef>
#include <string>
#include <vector>

namespace nexit::lint {

bool ident_start(char c);
bool ident_char(char c);
bool is_space(char c);

/// First index >= i that is not whitespace (or s.size()).
std::size_t skip_ws(const std::string& s, std::size_t i);

/// Index of the previous non-whitespace char before `i`, or npos.
std::size_t prev_nonspace(const std::string& s, std::size_t i);

/// `s[open]` is `open_ch`; returns the index of the matching `close_ch`
/// (same nesting level), or npos when unbalanced.
std::size_t find_matching(const std::string& s, std::size_t open, char open_ch,
                          char close_ch);

std::string trim_copy(const std::string& s);

bool path_ends_with(const std::string& path, const std::string& suffix);

/// True when the previous non-space char before `tok_begin` is `.` or `->`
/// (the token is a member access, e.g. `obj.time(...)`).
bool member_access_before(const std::string& s, std::size_t tok_begin);

struct Token {
  std::string text;
  std::size_t begin = 0;
  std::size_t end = 0;  // one past the last char
};

/// Identifier tokens of `s`, in order (operators and punctuation are
/// navigated by byte offset, not tokenized).
std::vector<Token> tokenize(const std::string& s);

/// 1-based line number of byte offset `pos`.
class LineIndex {
 public:
  explicit LineIndex(const std::string& s);
  [[nodiscard]] int line_of(std::size_t pos) const;

 private:
  std::vector<std::size_t> starts_;
};

}  // namespace nexit::lint
