// Pass 2 of the determinism lint: taint propagation from nondeterminism
// sources to digest/metric/output sinks, across function boundaries.
//
// Model: a statement's value is tainted when it mentions a source token
// (an obs::WallClock read — including file-local `using` aliases of it —
// raw entropy/time, a pointer-to-integer reinterpret_cast, a get_id()
// call, or the loop variable of a range-for over an unordered container),
// a local variable already tainted, or a call to a function whose return
// value is tainted. Assignments propagate taint to the assignee; `return`
// of a tainted value marks the whole function tainted, which a fixpoint
// over the call graph propagates to callers in other TUs. A finding fires
// when a tainted value appears in the arguments of a sink call
// (util::digest / FNV helpers, JsonReport's digest-included sections,
// metric recording, log/stdout emitters — NOT timing_entry, which is the
// sanctioned digest-EXCLUDED wall-clock section).
//
// Findings anchor at the SOURCE line: that is where allow(taint-flow)
// must sit, so a waiver is a statement about the value's nature ("this
// wall-clock read is excluded from digests by design"), not about one of
// its many consumers. Blind spots (pinned by fixtures): taint through
// function *parameters* (only return values propagate), through member
// state across methods, and through function pointers.

#include <map>
#include <set>
#include <tuple>

#include "lint_passes.hpp"
#include "lint_text.hpp"

namespace nexit::lint {
namespace {

const char* const kTaintFlow = "taint-flow";

/// Where a tainted value was born, plus the functions whose return values
/// carried it since.
struct Origin {
  int file = -1;
  int line = 0;
  std::string kind;
  std::vector<std::string> via;
};

struct FnState {
  bool returns_tainted = false;
  Origin origin;
};

/// Files whose own bodies legitimately mention clock/entropy tokens (the
/// canonical wrappers, same list as the raw-entropy rule).
bool source_exempt_path(const std::string& path) {
  return path_ends_with(path, "src/util/rng.hpp") ||
         path_ends_with(path, "src/util/rng.cpp") ||
         path_ends_with(path, "src/runtime/clock.hpp") ||
         path_ends_with(path, "src/runtime/clock.cpp") ||
         path_ends_with(path, "src/obs/wall_clock.hpp");
}

bool bare_source_token(const std::string& t) {
  return t == "WallClock" || t == "random_device" || t == "system_clock" ||
         t == "steady_clock";
}

bool call_source_token(const std::string& t) {
  return t == "rand" || t == "srand" || t == "random" || t == "drand48" ||
         t == "time" || t == "clock" || t == "gettimeofday" || t == "get_id";
}

std::string source_kind(const std::string& t) {
  if (t == "WallClock") return "wall-clock read (obs::WallClock)";
  if (t == "get_id") return "thread-id read (get_id)";
  return "raw entropy/time (" + t + ")";
}

bool integral_cast_target(const std::string& args) {
  static const char* const kIntegral[] = {
      "uintptr_t", "intptr_t", "size_t",  "uint64_t", "int64_t",
      "uint32_t",  "int32_t",  "unsigned", "long",    "int"};
  for (const Token& t : tokenize(args))
    for (const char* w : kIntegral)
      if (t.text == w) return true;
  return false;
}

/// Digest/metric/output sinks. timing_entry is deliberately absent: the
/// JsonReport timing section is digest-EXCLUDED by contract (PR 7), so
/// wall-clock flowing there is the sanctioned design, not a hazard.
bool sink_call_name(const std::string& t) {
  if (t == "timing_entry") return false;
  if (t.find("digest") != std::string::npos) return true;
  if (t.find("fnv1a") != std::string::npos) return true;
  return t == "metric" || t == "metric_cdf" || t == "obs_entry" ||
         t == "spec_entry" || t == "log_line" || t == "printf" ||
         t == "fprintf" || t == "puts";
}

/// Variables declared with an unordered_* container type anywhere in `s`.
std::set<std::string> harvest_unordered_vars(const std::string& s) {
  std::set<std::string> out;
  for (const Token& t : tokenize(s)) {
    if (t.text.rfind("unordered_", 0) != 0) continue;
    std::size_t p = skip_ws(s, t.end);
    if (p >= s.size() || s[p] != '<') continue;
    const std::size_t close = find_matching(s, p, '<', '>');
    if (close == std::string::npos) continue;
    p = skip_ws(s, close + 1);
    while (p < s.size()) {
      if (s[p] == '&' || s[p] == '*') {
        p = skip_ws(s, p + 1);
        continue;
      }
      if (s.compare(p, 5, "const") == 0 &&
          (p + 5 >= s.size() || !ident_char(s[p + 5]))) {
        p = skip_ws(s, p + 5);
        continue;
      }
      break;
    }
    if (p >= s.size() || !ident_start(s[p])) continue;
    std::size_t e = p;
    while (e < s.size() && ident_char(s[e])) ++e;
    const std::size_t after = skip_ws(s, e);
    if (after < s.size() && s[after] == '(') continue;  // function decl
    out.insert(s.substr(p, e - p));
  }
  return out;
}

/// File-local `using X = ...WallClock...;` (and aliases of aliases): names
/// that behave like the aliased source token.
std::map<std::string, std::string> harvest_source_aliases(
    const std::string& s) {
  std::map<std::string, std::string> aliases;  // alias -> kind
  for (int round = 0; round < 2; ++round) {
    const std::vector<Token> toks = tokenize(s);
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "using") continue;
      const Token& name = toks[i + 1];
      std::size_t p = skip_ws(s, name.end);
      if (p >= s.size() || s[p] != '=') continue;
      const std::size_t semi = s.find(';', p);
      if (semi == std::string::npos) continue;
      const std::string rhs = s.substr(p + 1, semi - p - 1);
      for (const Token& rt : tokenize(rhs)) {
        if (bare_source_token(rt.text)) {
          aliases[name.text] = source_kind(rt.text);
          break;
        }
        auto it = aliases.find(rt.text);
        if (it != aliases.end()) {
          aliases[name.text] = it->second;
          break;
        }
      }
    }
  }
  return aliases;
}

/// The spelled name at token `t` including an explicit `a::b::` prefix.
/// (Duplicated from lint_graph.cpp's internal helper on purpose: the taint
/// pass resolves callee names the same way the indexer records them.)
std::string spelled_at(const std::string& s, const Token& t) {
  std::string spelled = t.text;
  std::size_t p = t.begin;
  while (p >= 2 && s[p - 1] == ':' && s[p - 2] == ':') {
    std::size_t e = p - 2;
    std::size_t b = e;
    while (b > 0 && ident_char(s[b - 1])) --b;
    if (b == e) break;
    spelled = s.substr(b, e - b) + "::" + spelled;
    p = b;
  }
  return spelled;
}

struct Stmt {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Statement chunks of a function body: split at `;` `{` `}` outside
/// parentheses, so a for-header stays one chunk and nested blocks come
/// after their introducing statement (a linear order taint can walk).
std::vector<Stmt> split_statements(const std::string& s, std::size_t begin,
                                   std::size_t end) {
  std::vector<Stmt> out;
  int paren = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = s[i];
    if (c == '(') ++paren;
    else if (c == ')' && paren > 0) --paren;
    else if ((c == ';' || c == '{' || c == '}') && paren == 0) {
      if (i > start) out.push_back({start, i});
      start = i + 1;
    }
  }
  if (end > start) out.push_back({start, end});
  return out;
}

struct FileCtx {
  std::map<std::string, std::string> aliases;  // alias -> source kind
  std::set<std::string> unordered_vars;
  bool source_exempt = false;
};

class TaintAnalysis {
 public:
  TaintAnalysis(const std::vector<SourceFile>& files, const CallGraph& graph)
      : files_(files), graph_(graph), states_(graph.functions.size()) {
    for (const std::string& s : graph.sanitized) lines_.emplace_back(s);
    ctx_.resize(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      ctx_[i].aliases = harvest_source_aliases(graph.sanitized[i]);
      ctx_[i].unordered_vars = harvest_unordered_vars(graph.sanitized[i]);
      ctx_[i].source_exempt = source_exempt_path(files[i].path);
    }
  }

  void run(std::vector<Finding>& findings) {
    // Fixpoint on the returns-tainted summaries (monotone: a summary only
    // ever flips false -> true, and its origin is set exactly once).
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 32) {
      changed = false;
      for (std::size_t fi = 0; fi < graph_.functions.size(); ++fi)
        if (analyze_function(static_cast<int>(fi), nullptr)) changed = true;
    }
    for (std::size_t fi = 0; fi < graph_.functions.size(); ++fi)
      analyze_function(static_cast<int>(fi), &findings);
  }

 private:
  /// Origins a piece of text can contribute taint from, in spelling order.
  std::vector<Origin> eval_origins(int file, const std::string& text,
                                   std::size_t abs_offset,
                                   const std::map<std::string, Origin>& vars) {
    std::vector<Origin> out;
    const std::string& s = graph_.sanitized[file];
    const FileCtx& fc = ctx_[file];
    for (const Token& t : tokenize(text)) {
      const std::size_t abs = abs_offset + t.begin;
      const int line = lines_[file].line_of(abs);
      if (!fc.source_exempt && bare_source_token(t.text)) {
        out.push_back({file, line, source_kind(t.text), {}});
        continue;
      }
      const auto alias = fc.aliases.find(t.text);
      if (!fc.source_exempt && alias != fc.aliases.end()) {
        out.push_back({file, line, alias->second, {}});
        continue;
      }
      const std::size_t after = abs_offset + t.end;
      const bool is_call = skip_ws(s, after) < s.size() &&
                           s[skip_ws(s, after)] == '(';
      if (!fc.source_exempt && call_source_token(t.text) && is_call &&
          !member_access_before(s, abs)) {
        out.push_back({file, line, source_kind(t.text), {}});
        continue;
      }
      if (t.text == "reinterpret_cast") {
        std::size_t p = skip_ws(s, after);
        if (p < s.size() && s[p] == '<') {
          const std::size_t close = find_matching(s, p, '<', '>');
          if (close != std::string::npos &&
              integral_cast_target(s.substr(p + 1, close - p - 1))) {
            out.push_back({file, line, "pointer-to-integer cast", {}});
          }
        }
        continue;
      }
      const auto var = vars.find(t.text);
      if (var != vars.end() && !is_call) {
        out.push_back(var->second);
        continue;
      }
      if (is_call) {
        // Overload sets / same-named helpers in different TUs: prefer a
        // candidate defined in this file (the one overload resolution
        // would actually pick for a file-local helper), then any other.
        const std::vector<int> candidates =
            graph_.resolve(spelled_at(s, {t.text, abs, after}));
        int chosen = -1;
        for (int callee : candidates) {
          if (!states_[callee].returns_tainted) continue;
          if (graph_.functions[callee].file == file) {
            chosen = callee;
            break;
          }
          if (chosen < 0) chosen = callee;
        }
        if (chosen >= 0) {
          Origin o = states_[chosen].origin;
          const std::string& q = graph_.functions[chosen].qualified;
          bool seen = false;
          for (const std::string& v : o.via) seen |= (v == q);
          if (!seen) o.via.push_back(q);
          out.push_back(std::move(o));
        }
      }
    }
    return out;
  }

  /// Returns true when the function's summary changed. With `findings`
  /// non-null, also emits sink findings (the post-fixpoint pass).
  bool analyze_function(int fn, std::vector<Finding>* findings) {
    const FunctionDef& def = graph_.functions[fn];
    const std::string& s = graph_.sanitized[def.file];
    std::map<std::string, Origin> vars;
    bool changed = false;
    for (const Stmt& st :
         split_statements(s, def.body_begin + 1, def.body_end)) {
      const std::string text = s.substr(st.begin, st.end - st.begin);
      // Range-for over an unordered container: its loop variable is
      // iteration-order data.
      taint_unordered_loop_var(def.file, text, st.begin, vars);
      const std::vector<Origin> stmt_origins =
          eval_origins(def.file, text, st.begin, vars);

      // Assignment: propagate to (or clear from) the assignee.
      apply_assignment(text, stmt_origins, vars);

      // Return of a tainted value: the whole function is tainted.
      const std::size_t first = skip_ws(text, 0);
      if (!stmt_origins.empty() && text.compare(first, 6, "return") == 0 &&
          (first + 6 >= text.size() || !ident_char(text[first + 6]))) {
        FnState& state = states_[fn];
        if (!state.returns_tainted) {
          state.returns_tainted = true;
          state.origin = stmt_origins.front();
          changed = true;
        }
      }

      if (findings != nullptr)
        emit_sinks(fn, text, st.begin, vars, *findings);
    }
    return changed;
  }

  void taint_unordered_loop_var(int file, const std::string& text,
                                std::size_t abs_offset,
                                std::map<std::string, Origin>& vars) {
    const FileCtx& fc = ctx_[file];
    const std::vector<Token> toks = tokenize(text);
    for (const Token& t : toks) {
      if (t.text != "for") continue;
      const std::size_t open = skip_ws(text, t.end);
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = find_matching(text, open, '(', ')');
      if (close == std::string::npos) continue;
      std::size_t colon = std::string::npos;
      int depth = 0;
      for (std::size_t i = open + 1; i < close; ++i) {
        const char c = text[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        else if (c == ':' && depth == 0) {
          if ((i + 1 < close && text[i + 1] == ':') ||
              (i > 0 && text[i - 1] == ':'))
            continue;
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      const std::string range = text.substr(colon + 1, close - colon - 1);
      bool unordered = range.find("unordered_") != std::string::npos;
      for (const Token& rt : tokenize(range))
        unordered |= fc.unordered_vars.count(rt.text) != 0;
      if (!unordered) continue;
      std::string var;
      for (const Token& ht : toks) {
        if (ht.begin <= open || ht.end >= colon) continue;
        var = ht.text;  // last identifier before `:` is the loop variable
      }
      if (var.empty()) continue;
      vars[var] = {file, lines_[file].line_of(abs_offset + t.begin),
                   "unordered-container iteration order", {}};
    }
  }

  void apply_assignment(const std::string& text,
                        const std::vector<Origin>& stmt_origins,
                        std::map<std::string, Origin>& vars) {
    int depth = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '(' || c == '[') ++depth;
      else if (c == ')' || c == ']') --depth;
      if (c != '=' || depth != 0) continue;
      const char prev = i > 0 ? text[i - 1] : '\0';
      const char next = i + 1 < text.size() ? text[i + 1] : '\0';
      if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
          prev == '>')
        continue;  // comparison, not assignment
      const bool compound = prev == '+' || prev == '-' || prev == '*' ||
                            prev == '/' || prev == '%' || prev == '&' ||
                            prev == '|' || prev == '^';
      std::size_t e = prev_nonspace(text, compound ? i - 1 : i);
      if (e == std::string::npos || !ident_char(text[e])) return;
      std::size_t b = e;
      while (b > 0 && ident_char(text[b - 1])) --b;
      const std::string lhs = text.substr(b, e - b + 1);
      if (!stmt_origins.empty()) {
        vars[lhs] = stmt_origins.front();
      } else if (!compound) {
        vars.erase(lhs);  // clean reassignment clears the taint
      }
      return;
    }
  }

  void emit_sinks(int fn, const std::string& text, std::size_t abs_offset,
                  const std::map<std::string, Origin>& vars,
                  std::vector<Finding>& findings) {
    const FunctionDef& def = graph_.functions[fn];
    const std::string& s = graph_.sanitized[def.file];
    for (const Token& t : tokenize(text)) {
      std::string sink;
      std::string args;
      std::size_t args_offset = 0;
      if (sink_call_name(t.text)) {
        const std::size_t open = skip_ws(s, abs_offset + t.end);
        if (open >= s.size() || s[open] != '(') continue;
        const std::size_t close = find_matching(s, open, '(', ')');
        if (close == std::string::npos) continue;
        sink = t.text;
        args = s.substr(open + 1, close - open - 1);
        args_offset = open + 1;
      } else if (t.text == "cout" || t.text == "cerr") {
        sink = "std::" + t.text + " output";
        args = text;
        args_offset = abs_offset;
      } else {
        continue;
      }
      for (const Origin& o :
           eval_origins(def.file, args, args_offset, vars)) {
        const int sink_line = lines_[def.file].line_of(abs_offset + t.begin);
        const auto key = std::make_tuple(o.file, o.line, def.file, sink_line,
                                         sink);
        if (!emitted_.insert(key).second) continue;
        std::string chain;
        for (const std::string& v : o.via) chain += v + " -> ";
        chain += def.qualified;
        findings.push_back(
            {files_[o.file].path, o.line, kTaintFlow,
             "nondeterministic value (" + o.kind + ") born here reaches sink `" +
                 sink + "` at " + files_[def.file].path + ":" +
                 std::to_string(sink_line) + " via " + chain +
                 " — waive with allow(taint-flow) at this source line only "
                 "if the value is digest-excluded by design",
             false, ""});
      }
    }
  }

  const std::vector<SourceFile>& files_;
  const CallGraph& graph_;
  std::vector<FnState> states_;
  std::vector<LineIndex> lines_;
  std::vector<FileCtx> ctx_;
  std::set<std::tuple<int, int, int, int, std::string>> emitted_;
};

}  // namespace

void run_taint_pass(const std::vector<SourceFile>& files,
                    const CallGraph& graph, std::vector<Finding>& findings) {
  TaintAnalysis(files, graph).run(findings);
}

}  // namespace nexit::lint
