#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>

#include "lint_graph.hpp"
#include "lint_passes.hpp"
#include "lint_text.hpp"

namespace nexit::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const char* const kUnorderedIteration = "unordered-iteration";
const char* const kRawEntropy = "raw-entropy";
const char* const kPointerSort = "pointer-sort";
const char* const kFloatAccumulate = "float-accumulate";
const char* const kUninitPodDigest = "uninit-pod-digest";
const char* const kTaintFlow = "taint-flow";
const char* const kLockOrder = "lock-order";
const char* const kUnguardedWrite = "unguarded-write";
const char* const kDeadSpecKey = "dead-spec-key";
const char* const kBadAllow = "bad-allow";
const char* const kStaleAllow = "stale-allow";

}  // namespace

const std::vector<Rule>& rule_table() {
  static const std::vector<Rule> kTable = {
      {kUnorderedIteration,
       "range-for over an unordered_map/unordered_set whose body feeds an "
       "accumulator, digest, or output",
       "hash-table iteration order is implementation- and run-dependent; "
       "anything order-sensitive must iterate a sorted view or an "
       "index-ordered vector"},
      {kRawEntropy,
       "rand()/srand()/std::random_device, std::shuffle, time()/clock()/"
       "gettimeofday(), or std::chrono::{system,steady}_clock outside "
       "util::Rng / runtime::Clock / obs::WallClock",
       "unseeded entropy and wall-clock reads make reruns diverge; all "
       "randomness flows through util::Rng streams, all simulated time "
       "through the runtime's virtual clock, and all wall-time measurement "
       "through obs::WallClock (the one sanctioned steady_clock wrapper, so "
       "timing stays corralled in the digest-excluded timing section)"},
      {kPointerSort,
       "sort comparator that orders by pointer value or address, or a "
       "comparator-less sort of a pointer container",
       "allocator addresses differ run to run, so address order is "
       "nondeterministic; sort by id or by a value key instead"},
      {kFloatAccumulate,
       "floating-point `+=` reduction inside a loop outside the canonical "
       "summation helpers (util::stats, routing::loads/IncrementalLoads, "
       "metrics)",
       "FP addition is non-associative: the reduction order IS the result, "
       "ulp drift can flip a preference class (see PR 3), so every "
       "summation order must be owned by a helper or explicitly annotated"},
      {kUninitPodDigest,
       "builtin-typed struct member without an initializer, in a file that "
       "touches the digest machinery",
       "uninitialized bytes reaching util::digest make the determinism "
       "digests compare garbage; every member must have a deterministic "
       "initial value"},
      {kTaintFlow,
       "cross-TU taint: a nondeterminism source value (obs::WallClock read, "
       "raw entropy, pointer-to-integer cast, thread id, unordered-container "
       "iteration order) flows — through locals and function return values — "
       "into a digest, metric, or output sink (runs under --taint)",
       "a digest or emitted record that depends on such a value differs "
       "between runs even when every line looks innocent in isolation; the "
       "finding anchors at the SOURCE line and reports the full "
       "source -> sink call chain, and only an allow(taint-flow) at that "
       "source line can waive it (the waiver is a statement about the "
       "value, e.g. wall_ms being digest-excluded by design)"},
      {kLockOrder,
       "two functions acquire the same pair of mutexes in opposite orders "
       "(runs under --locks)",
       "inconsistent pairwise acquisition order is the ABBA deadlock shape; "
       "under contention the run wedges — or worse, a timeout path fires "
       "nondeterministically and the records diverge"},
      {kUnguardedWrite,
       "write to shared (captured, non-slot) state inside a ThreadPool "
       "worker lambda with no lock or atomic in scope (runs under --locks)",
       "the winner of a racy write is schedule-dependent, which is exactly "
       "the nondeterminism the --threads=N bit-identity contract forbids; "
       "give each worker its own slot (out[i] = ...), guard the write, or "
       "make it atomic"},
      {kDeadSpecKey,
       "sim::spec_key_registry entry whose key is never read by any "
       "flags/spec accessor (runs under --dead-keys)",
       "a registered key that nothing reads still serializes, documents, "
       "and digests — so specs look configurable while the knob is "
       "disconnected; wire it up or delete the entry"},
      {kBadAllow,
       "malformed nexit-lint annotation (unknown rule name, or missing "
       "reason)",
       "suppressions are part of the determinism contract's audit trail; "
       "each must name a real rule and justify itself"},
      {kStaleAllow,
       "nexit-lint allow annotation that no longer suppresses any finding",
       "stale suppressions hide future regressions of the same rule on "
       "nearby lines; delete them when the code they excused is gone"},
  };
  return kTable;
}

bool known_rule(const std::string& name) {
  for (const Rule& r : rule_table())
    if (r.name == name) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Comment / string stripping
// ---------------------------------------------------------------------------

std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // the )delim" closer of a raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || !ident_char(text[i - 1]))) {
          std::size_t p = i + 2;
          std::string d;
          while (p < text.size() && text[p] != '(') d += text[p++];
          raw_delim = ")" + d + "\"";
          st = St::kRaw;
          for (std::size_t k = i; k <= p && k < text.size(); ++k)
            if (out[k] != '\n') out[k] = ' ';
          i = p;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') out[++i] = ' ';
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// allow() annotations
// ---------------------------------------------------------------------------

struct Allow {
  int line = 0;
  std::string rule;
  std::string reason;
  bool used = false;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

/// Parses every `nexit-lint: allow(<rule>): <reason>` annotation from the
/// RAW text (annotations live in comments). Malformed ones become bad-allow
/// findings directly.
std::vector<Allow> collect_allows(const std::string& raw,
                                  const std::string& path,
                                  std::vector<Finding>& findings) {
  std::vector<Allow> allows;
  const std::string kTag = "nexit-lint:";
  const LineIndex lines(raw);
  std::size_t from = 0;
  while (true) {
    const std::size_t at = raw.find(kTag, from);
    if (at == std::string::npos) break;
    from = at + kTag.size();
    const int line = lines.line_of(at);
    const std::size_t eol_pos = raw.find('\n', at);
    const std::string rest = trim(raw.substr(
        at + kTag.size(),
        (eol_pos == std::string::npos ? raw.size() : eol_pos) - at -
            kTag.size()));
    auto bad = [&](const std::string& why) {
      findings.push_back({path, line, kBadAllow,
                          "malformed nexit-lint annotation: " + why, false, ""});
    };
    if (rest.compare(0, 6, "allow(") != 0) {
      bad("expected `allow(<rule>): <reason>` after `nexit-lint:`");
      continue;
    }
    const std::size_t close = rest.find(')', 6);
    if (close == std::string::npos) {
      bad("unterminated allow(");
      continue;
    }
    const std::string rule = trim(rest.substr(6, close - 6));
    if (!known_rule(rule)) {
      bad("unknown rule `" + rule + "` (see --list-rules)");
      continue;
    }
    if (rule == kBadAllow || rule == kStaleAllow) {
      bad("rule `" + rule + "` is not suppressible");
      continue;
    }
    std::size_t p = skip_ws(rest, close + 1);
    if (p >= rest.size() || rest[p] != ':') {
      bad("expected `: <reason>` after allow(" + rule + ")");
      continue;
    }
    const std::string reason = trim(rest.substr(p + 1));
    if (reason.empty()) {
      bad("allow(" + rule + ") needs a non-empty reason");
      continue;
    }
    allows.push_back({line, rule, reason, false});
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Declaration harvesting (shared by several rules)
// ---------------------------------------------------------------------------

/// After a container-type token (e.g. `unordered_map`), skips the template
/// argument list and any `const`/`&`/`*` decoration and returns the declared
/// variable name, or "" when the token is not a declaration site.
std::string declared_name_after_type(const std::string& s,
                                     const Token& type_tok) {
  std::size_t p = skip_ws(s, type_tok.end);
  if (p < s.size() && s[p] == '<') {
    const std::size_t close = find_matching(s, p, '<', '>');
    if (close == std::string::npos) return "";
    p = skip_ws(s, close + 1);
  }
  while (p < s.size()) {
    if (s[p] == '&' || s[p] == '*') {
      p = skip_ws(s, p + 1);
      continue;
    }
    if (s.compare(p, 5, "const") == 0 && (p + 5 >= s.size() || !ident_char(s[p + 5]))) {
      p = skip_ws(s, p + 5);
      continue;
    }
    break;
  }
  if (p >= s.size() || !ident_start(s[p])) return "";
  std::size_t e = p;
  while (e < s.size() && ident_char(s[e])) ++e;
  std::string name = s.substr(p, e - p);
  // `unordered_map<...> foo(` is a function returning the map, not a var.
  const std::size_t after = skip_ws(s, e);
  if (after < s.size() && s[after] == '(') return "";
  return name;
}

/// Names of variables declared in `s` with a type whose last type token is
/// in `type_tokens` and whose template argument list satisfies `args_ok`
/// (always true when the type has no template args and `args_ok` is null).
std::set<std::string> harvest_decls(
    const std::string& s, const std::vector<Token>& toks,
    const std::set<std::string>& type_tokens,
    bool (*args_ok)(const std::string&) = nullptr) {
  std::set<std::string> names;
  for (const Token& t : toks) {
    if (type_tokens.count(t.text) == 0) continue;
    if (args_ok != nullptr) {
      const std::size_t p = skip_ws(s, t.end);
      if (p >= s.size() || s[p] != '<') continue;
      const std::size_t close = find_matching(s, p, '<', '>');
      if (close == std::string::npos) continue;
      if (!args_ok(s.substr(p + 1, close - p - 1))) continue;
    }
    const std::string name = declared_name_after_type(s, t);
    if (!name.empty()) names.insert(name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------------

const char* find_sink(const std::string& body) {
  static const char* const kSinks[] = {"+=",        "<<",      "push_back",
                                       "emplace",   "insert",  "append",
                                       "fnv1a",     "digest",  "printf",
                                       "log_line"};
  for (const char* sink : kSinks)
    if (body.find(sink) != std::string::npos) return sink;
  return nullptr;
}

void rule_unordered_iteration(const std::string& path, const std::string& s,
                              const std::vector<Token>& toks,
                              const LineIndex& lines,
                              std::vector<Finding>& findings) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const std::set<std::string> unordered_vars =
      harvest_decls(s, toks, kUnorderedTypes);

  for (const Token& t : toks) {
    if (t.text != "for") continue;
    const std::size_t open = skip_ws(s, t.end);
    if (open >= s.size() || s[open] != '(') continue;
    const std::size_t close = find_matching(s, open, '(', ')');
    if (close == std::string::npos) continue;
    // Top-level `:` of a range-for (skipping `::`).
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = s[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ':' && depth == 0) {
        if ((i + 1 < close && s[i + 1] == ':') || (i > 0 && s[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range_expr = s.substr(colon + 1, close - colon - 1);
    bool over_unordered = range_expr.find("unordered_") != std::string::npos;
    std::string var;
    for (const Token& rt : tokenize(range_expr)) {
      if (unordered_vars.count(rt.text) != 0) {
        over_unordered = true;
        var = rt.text;
        break;
      }
    }
    if (!over_unordered) continue;
    // Loop body: braced block or single statement.
    std::size_t body_begin = skip_ws(s, close + 1);
    std::string body;
    if (body_begin < s.size() && s[body_begin] == '{') {
      const std::size_t body_close = find_matching(s, body_begin, '{', '}');
      if (body_close == std::string::npos) continue;
      body = s.substr(body_begin, body_close - body_begin + 1);
    } else {
      const std::size_t semi = s.find(';', body_begin);
      if (semi == std::string::npos) continue;
      body = s.substr(body_begin, semi - body_begin + 1);
    }
    if (const char* sink = find_sink(body)) {
      findings.push_back(
          {path, lines.line_of(t.begin), kUnorderedIteration,
           "iteration over unordered container" +
               (var.empty() ? std::string() : " `" + var + "`") +
               " feeds `" + sink +
               "` — hash order is nondeterministic; iterate a sorted view "
               "or index-ordered vector instead",
           false, ""});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-entropy
// ---------------------------------------------------------------------------

void rule_raw_entropy(const std::string& path, const std::string& s,
                      const std::vector<Token>& toks, const LineIndex& lines,
                      std::vector<Finding>& findings) {
  if (path_ends_with(path, "src/util/rng.hpp") ||
      path_ends_with(path, "src/util/rng.cpp") ||
      path_ends_with(path, "src/runtime/clock.hpp") ||
      path_ends_with(path, "src/runtime/clock.cpp") ||
      path_ends_with(path, "src/obs/wall_clock.hpp")) {
    return;  // the canonical wrappers themselves
  }
  // Entropy/time functions: flagged when *called* (next char is `(`) and
  // not a member access (`obj.time(...)` is somebody's method, `::time(`
  // and bare `time(` are libc).
  static const std::set<std::string> kCalls = {
      "rand",      "srand",        "rand_r",       "random",
      "drand48",   "lrand48",      "mrand48",      "time",
      "clock",     "gettimeofday", "timespec_get", "localtime",
      "gmtime",    "shuffle",      "random_shuffle"};
  // Nondeterminism sources flagged on sight, call or not.
  static const std::set<std::string> kBare = {"random_device", "system_clock",
                                              "steady_clock"};

  for (const Token& t : toks) {
    std::string what;
    if (kBare.count(t.text) != 0) {
      what = t.text;
    } else if (kCalls.count(t.text) != 0) {
      const std::size_t p = skip_ws(s, t.end);
      if (p >= s.size() || s[p] != '(') continue;
      if (member_access_before(s, t.begin)) continue;
      what = t.text + "()";
    } else {
      continue;
    }
    findings.push_back(
        {path, lines.line_of(t.begin), kRawEntropy,
         "`" + what +
             "` — route randomness through util::Rng, simulated time "
             "through runtime::Clock, and wall-clock measurement through "
             "obs::WallClock",
         false, ""});
  }
}

// ---------------------------------------------------------------------------
// Rule: pointer-sort
// ---------------------------------------------------------------------------

bool template_args_contain_pointer(const std::string& args) {
  return args.find('*') != std::string::npos;
}

std::vector<std::string> lambda_param_names(const std::string& params) {
  std::vector<std::string> names;
  int depth = 0;
  std::string current;
  auto flush = [&]() {
    const std::vector<Token> ts = tokenize(current);
    if (!ts.empty()) names.push_back(ts.back().text);
    current.clear();
  };
  for (const char c : params) {
    if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
    else if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) flush();
    else current += c;
  }
  flush();
  return names;
}

/// `&a < &b` style address comparison anywhere in `body`.
bool compares_addresses(const std::string& body) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] != '&') continue;
    // Binary bitwise-and (`x & y`) has an identifier/paren directly before —
    // but a keyword like `return` before `&` still introduces an address-of.
    const std::size_t prev = prev_nonspace(body, i);
    if (prev != std::string::npos &&
        (ident_char(body[prev]) || body[prev] == ')' || body[prev] == ']')) {
      bool keyword_before = false;
      if (ident_char(body[prev])) {
        std::size_t b = prev;
        while (b > 0 && ident_char(body[b - 1])) --b;
        const std::string word = body.substr(b, prev - b + 1);
        keyword_before = word == "return" || word == "case" ||
                         word == "co_return" || word == "co_yield";
      }
      if (!keyword_before) continue;
    }
    std::size_t p = skip_ws(body, i + 1);
    if (p >= body.size() || !ident_start(body[p])) continue;
    while (p < body.size() && (ident_char(body[p]) || body[p] == '.')) ++p;
    p = skip_ws(body, p);
    if (p < body.size() && (body[p] == '<' || body[p] == '>')) {
      std::size_t q = p + 1;
      if (q < body.size() && body[q] == '=') ++q;
      q = skip_ws(body, q);
      if (q < body.size() && body[q] == '&') return true;
    }
  }
  return false;
}

/// Bare `a < b` where a, b are comparator parameter names (no dereference,
/// no member access): the comparator orders by pointer value.
bool compares_params_bare(const std::string& body,
                          const std::vector<std::string>& params) {
  const std::vector<Token> toks = tokenize(body);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    bool is_param = false;
    for (const std::string& p : params) is_param |= (toks[i].text == p);
    if (!is_param) continue;
    const std::size_t prev = prev_nonspace(body, toks[i].begin);
    if (prev != std::string::npos &&
        (body[prev] == '*' || body[prev] == '.' || body[prev] == '&'))
      continue;  // dereferenced / member / address-of (handled separately)
    std::size_t p = skip_ws(body, toks[i].end);
    if (p >= body.size() || (body[p] != '<' && body[p] != '>')) continue;
    std::size_t q = p + 1;
    if (q < body.size() && body[q] == '=') ++q;
    if (q < body.size() && (body[q] == body[p])) continue;  // << or >>
    q = skip_ws(body, q);
    if (q >= body.size() || !ident_start(body[q])) continue;
    std::size_t e = q;
    while (e < body.size() && ident_char(body[e])) ++e;
    const std::string rhs = body.substr(q, e - q);
    // RHS must be a *bare* param too (a < b->id is a value compare).
    if (e < body.size() && (body[e] == '.' || body.compare(e, 2, "->") == 0))
      continue;
    for (const std::string& pn : params)
      if (rhs == pn) return true;
  }
  return false;
}

void rule_pointer_sort(const std::string& path, const std::string& s,
                       const std::vector<Token>& toks, const LineIndex& lines,
                       std::vector<Finding>& findings) {
  static const std::set<std::string> kVectorTypes = {"vector", "array", "deque"};
  const std::set<std::string> ptr_containers =
      harvest_decls(s, toks, kVectorTypes, template_args_contain_pointer);
  static const std::set<std::string> kSortFns = {"sort", "stable_sort",
                                                 "partial_sort", "nth_element"};
  for (const Token& t : toks) {
    if (kSortFns.count(t.text) == 0) continue;
    const std::size_t open = skip_ws(s, t.end);
    if (open >= s.size() || s[open] != '(') continue;
    if (member_access_before(s, t.begin)) continue;  // x.sort() is a method
    const std::size_t close = find_matching(s, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string args = s.substr(open + 1, close - open - 1);
    const int line = lines.line_of(t.begin);

    // Comparator lambda, if present.
    std::size_t lb = std::string::npos;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] != '[') continue;
      const std::size_t prev = prev_nonspace(args, i);
      if (prev != std::string::npos &&
          (ident_char(args[prev]) || args[prev] == ')' || args[prev] == ']'))
        continue;  // subscript, not a lambda introducer
      lb = i;
      break;
    }
    if (lb != std::string::npos) {
      const std::size_t cap_close = find_matching(args, lb, '[', ']');
      if (cap_close == std::string::npos) continue;
      std::size_t p = skip_ws(args, cap_close + 1);
      std::string params;
      if (p < args.size() && args[p] == '(') {
        const std::size_t pc = find_matching(args, p, '(', ')');
        if (pc == std::string::npos) continue;
        params = args.substr(p + 1, pc - p - 1);
        p = pc + 1;
      }
      const std::size_t bb = args.find('{', p);
      if (bb == std::string::npos) continue;
      const std::size_t bc = find_matching(args, bb, '{', '}');
      if (bc == std::string::npos) continue;
      const std::string body = args.substr(bb + 1, bc - bb - 1);
      if (compares_addresses(body)) {
        findings.push_back({path, line, kPointerSort,
                            "sort comparator compares addresses (&x < &y) — "
                            "allocation order is not deterministic",
                            false, ""});
        continue;
      }
      if (params.find('*') != std::string::npos &&
          compares_params_bare(body, lambda_param_names(params))) {
        findings.push_back({path, line, kPointerSort,
                            "sort comparator orders pointer parameters by "
                            "pointer value — sort by id or value key instead",
                            false, ""});
      }
      continue;
    }

    // No lambda: a two-argument sort over a declared pointer container
    // sorts by address.
    int commas = 0, depth = 0;
    for (const char c : args) {
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ',' && depth == 0) ++commas;
    }
    if (commas != 1) continue;
    for (const Token& at : tokenize(args)) {
      if (ptr_containers.count(at.text) != 0) {
        findings.push_back(
            {path, line, kPointerSort,
             "sorting pointer container `" + at.text +
                 "` without a value comparator orders it by address",
             false, ""});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-accumulate
// ---------------------------------------------------------------------------

/// Variables (including members and parameters) declared `double`/`float`.
std::set<std::string> harvest_float_decls(const std::string& s,
                                          const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (const Token& t : toks) {
    if (t.text != "double" && t.text != "float") continue;
    std::size_t p = skip_ws(s, t.end);
    // Declarator list: name [= init | { init }] [, name ...] terminated by
    // `;` or `)`. A `(` right after the name means a function declaration.
    while (p < s.size()) {
      if (!ident_start(s[p])) break;
      std::size_t e = p;
      while (e < s.size() && ident_char(s[e])) ++e;
      const std::string name = s.substr(p, e - p);
      std::size_t q = skip_ws(s, e);
      if (q < s.size() && s[q] == '(') break;  // function, not a variable
      if (q < s.size() && (s[q] == '=' || s[q] == '{')) {
        // Skip the initializer to the next top-level `,` `;` or `)`.
        int depth = 0;
        if (s[q] == '{') { depth = 1; ++q; }
        else ++q;
        while (q < s.size()) {
          const char c = s[q];
          if (c == '(' || c == '[' || c == '{') ++depth;
          else if (c == ')' || c == ']' || c == '}') {
            if (depth == 0) break;
            --depth;
          } else if ((c == ',' || c == ';') && depth == 0) {
            break;
          }
          ++q;
        }
      }
      names.insert(name);
      q = skip_ws(s, q);
      if (q < s.size() && s[q] == ',') {
        p = skip_ws(s, q + 1);
        continue;
      }
      break;
    }
  }
  return names;
}

void rule_float_accumulate(const std::string& path, const std::string& s,
                           const std::string& sibling_header,
                           const std::vector<Token>& toks,
                           const LineIndex& lines,
                           std::vector<Finding>& findings) {
  // The canonical owners of summation order are exempt: they are the
  // helpers everything else is told to call.
  static const char* const kCanonical[] = {
      "src/util/stats.hpp",          "src/util/stats.cpp",
      "src/routing/loads.hpp",       "src/routing/loads.cpp",
      "src/routing/incremental_loads.hpp",
      "src/routing/incremental_loads.cpp",
      "src/metrics/metrics.hpp",
      "src/metrics/metrics.cpp"};
  for (const char* c : kCanonical)
    if (path_ends_with(path, c)) return;

  std::set<std::string> float_vars = harvest_float_decls(s, toks);
  if (!sibling_header.empty()) {
    const std::string hdr = strip_comments_and_strings(sibling_header);
    for (const std::string& n : harvest_float_decls(hdr, tokenize(hdr)))
      float_vars.insert(n);
  }
  if (float_vars.empty()) return;

  // Walk the file tracking which open brace scopes are loop bodies.
  std::vector<bool> scope_is_loop;
  bool pending_loop = false;  // just closed a for/while header (or saw do)
  int unbraced_loop = 0;      // inside an unbraced loop body statement
  int paren_depth = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (ident_start(c) && (i == 0 || !ident_char(s[i - 1]))) {
      std::size_t e = i;
      while (e < s.size() && ident_char(s[e])) ++e;
      const std::string word = s.substr(i, e - i);
      if (word == "for" || word == "while") {
        const std::size_t open = skip_ws(s, e);
        if (open < s.size() && s[open] == '(') {
          const std::size_t close = find_matching(s, open, '(', ')');
          if (close != std::string::npos) {
            // The loop header itself is scanned as part of the outer
            // context; the body begins after `)`.
            i = close + 1;
            const std::size_t nb = skip_ws(s, i);
            if (nb < s.size() && s[nb] != '{') ++unbraced_loop;
            else pending_loop = true;
            continue;
          }
        }
      } else if (word == "do") {
        const std::size_t nb = skip_ws(s, e);
        if (nb < s.size() && s[nb] == '{') pending_loop = true;
        else ++unbraced_loop;
      }
      i = e;
      continue;
    }
    if (c == '{') {
      scope_is_loop.push_back(pending_loop);
      pending_loop = false;
    } else if (c == '}') {
      if (!scope_is_loop.empty()) scope_is_loop.pop_back();
    } else if (c == '(') {
      ++paren_depth;
    } else if (c == ')') {
      if (paren_depth > 0) --paren_depth;
    } else if (c == ';' && paren_depth == 0) {
      unbraced_loop = 0;
    } else if (c == '+' && i + 1 < s.size() && s[i + 1] == '=') {
      const int loop_depth =
          static_cast<int>(std::count(scope_is_loop.begin(),
                                      scope_is_loop.end(), true)) +
          unbraced_loop;
      if (loop_depth > 0) {
        // LHS identifier (skipping `obj.` / `ptr->` prefixes; `x[i] +=` and
        // `(*p) +=` have `]`/`)` before the operator and are skipped).
        std::size_t e2 = prev_nonspace(s, i);
        if (e2 != std::string::npos && ident_char(s[e2])) {
          std::size_t b = e2;
          while (b > 0 && ident_char(s[b - 1])) --b;
          const std::string lhs = s.substr(b, e2 - b + 1);
          if (float_vars.count(lhs) != 0) {
            findings.push_back(
                {path, lines.line_of(i), kFloatAccumulate,
                 "floating-point reduction `" + lhs +
                     " +=` inside a loop — use util::sum/util::mean "
                     "(src/util/stats.hpp) or annotate why this order is "
                     "canonical",
                 false, ""});
          }
        }
      }
      i += 2;
      continue;
    }
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Rule: uninit-pod-digest
// ---------------------------------------------------------------------------

bool digest_adjacent(const std::string& raw, const std::string& sanitized) {
  if (raw.find("util/digest.hpp") != std::string::npos) return true;
  for (const Token& t : tokenize(sanitized))
    if (t.text.find("digest") != std::string::npos) return true;
  return false;
}

const std::set<std::string>& builtin_type_tokens() {
  static const std::set<std::string> kTypes = {
      "bool",     "char",     "wchar_t",  "char8_t",  "char16_t",
      "char32_t", "short",    "int",      "long",     "unsigned",
      "signed",   "float",    "double",   "size_t",   "ptrdiff_t",
      "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",
      "uint16_t", "uint32_t", "uint64_t", "intptr_t", "uintptr_t"};
  return kTypes;
}

void scan_struct_body(const std::string& path, const std::string& s,
                      const std::string& struct_name, std::size_t body_open,
                      std::size_t body_close, const LineIndex& lines,
                      std::vector<Finding>& findings) {
  std::size_t i = body_open + 1;
  std::size_t stmt_begin = i;
  bool stmt_has_init = false;
  while (i < body_close) {
    const char c = s[i];
    if (c == '{') {
      const std::size_t prev = prev_nonspace(s, i);
      bool initializer = prev != std::string::npos && prev > body_open &&
                         (ident_char(s[prev]) || s[prev] == '=');
      if (initializer && ident_char(s[prev])) {
        // `...) const {`, `...) noexcept {` etc. are function bodies, not
        // brace initializers, despite the identifier before `{`.
        std::size_t b = prev;
        while (b > body_open && ident_char(s[b - 1])) --b;
        const std::string word = s.substr(b, prev - b + 1);
        if (word == "const" || word == "noexcept" || word == "override" ||
            word == "final" || word == "mutable" || word == "try")
          initializer = false;
      }
      const std::size_t close = find_matching(s, i, '{', '}');
      if (close == std::string::npos || close > body_close) return;
      if (initializer) {
        stmt_has_init = true;
        i = close + 1;
      } else {
        // Function body or nested type (nested structs are found by the
        // outer token scan on their own): skip it and start a new statement.
        i = close + 1;
        stmt_begin = i;
        stmt_has_init = false;
      }
      continue;
    }
    if (c == ';') {
      std::string stmt = s.substr(stmt_begin, i - stmt_begin);
      std::size_t stmt_offset = stmt_begin;
      // Strip a leading access specifier (`public:` etc.) so the member
      // after it is still analyzed.
      for (const char* spec : {"public", "private", "protected"}) {
        const std::size_t at = stmt.find(spec);
        if (at == std::string::npos) continue;
        std::size_t colon = skip_ws(stmt, at + std::string(spec).size());
        if (colon < stmt.size() && stmt[colon] == ':' &&
            (colon + 1 >= stmt.size() || stmt[colon + 1] != ':')) {
          stmt_offset += colon + 1;
          stmt = stmt.substr(colon + 1);
        }
      }
      // Bitfield colon (a `:` that is not part of `::`)?
      bool has_bitfield_colon = false;
      for (std::size_t ci = 0; ci < stmt.size(); ++ci) {
        if (stmt[ci] != ':') continue;
        if ((ci + 1 < stmt.size() && stmt[ci + 1] == ':') ||
            (ci > 0 && stmt[ci - 1] == ':'))
          continue;
        has_bitfield_colon = true;
        break;
      }
      // A member declaration of builtin scalar type with no initializer?
      bool skip = stmt_has_init || stmt.find('=') != std::string::npos ||
                  stmt.find('(') != std::string::npos || has_bitfield_colon;
      if (!skip) {
        const std::vector<Token> ts = tokenize(stmt);
        static const std::set<std::string> kSkipWords = {
            "static", "constexpr", "using",  "typedef",
            "friend", "operator",  "return", "enum"};
        std::size_t k = 0;
        bool saw_builtin = false;
        for (; k < ts.size(); ++k) {
          const std::string& w = ts[k].text;
          if (kSkipWords.count(w) != 0) {
            saw_builtin = false;
            break;
          }
          if (w == "std" || w == "const" || w == "mutable" || w == "volatile")
            continue;
          if (builtin_type_tokens().count(w) != 0) {
            saw_builtin = true;
            continue;
          }
          break;  // first non-type token: the declarator name(s) start here
        }
        if (saw_builtin && k < ts.size()) {
          std::string members;
          for (std::size_t m = k; m < ts.size(); ++m)
            members += (members.empty() ? "" : ", ") + ts[m].text;
          findings.push_back(
              {path, lines.line_of(stmt_offset + ts[k].begin),
               kUninitPodDigest,
               "member `" + members + "` of `" +
                   (struct_name.empty() ? "(anonymous)" : struct_name) +
                   "` has builtin type but no initializer, in a "
                   "digest-adjacent file — uninitialized bits would reach "
                   "util::digest",
               false, ""});
        }
      }
      ++i;
      stmt_begin = i;
      stmt_has_init = false;
      continue;
    }
    ++i;
  }
}

void rule_uninit_pod_digest(const std::string& path, const std::string& raw,
                            const std::string& s,
                            const std::vector<Token>& toks,
                            const LineIndex& lines,
                            std::vector<Finding>& findings) {
  if (!digest_adjacent(raw, s)) return;
  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    const Token& t = toks[ti];
    if (t.text != "struct" && t.text != "class") continue;
    if (ti > 0 && toks[ti - 1].text == "enum") continue;
    std::string name;
    std::size_t p = skip_ws(s, t.end);
    if (p < s.size() && ident_start(s[p])) {
      std::size_t e = p;
      while (e < s.size() && ident_char(s[e])) ++e;
      name = s.substr(p, e - p);
      p = e;
    }
    // Find the introducing `{`; bail at `;` (forward decl) or `(`
    // (elaborated type in a parameter/return position).
    std::size_t open = std::string::npos;
    for (std::size_t i = p; i < s.size(); ++i) {
      if (s[i] == '{') {
        open = i;
        break;
      }
      if (s[i] == ';' || s[i] == '(' || s[i] == ')' || s[i] == '=') break;
    }
    if (open == std::string::npos) continue;
    const std::size_t close = find_matching(s, open, '{', '}');
    if (close == std::string::npos) continue;
    scan_struct_body(path, s, name, open, close, lines, findings);
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// [0] unused; [i] = line i of the sanitized text has no code on it
/// (blank, or comment-only before stripping).
std::vector<bool> blank_lines(const std::string& sanitized) {
  std::vector<bool> blank{true};
  bool cur = true;
  for (char c : sanitized) {
    if (c == '\n') {
      blank.push_back(cur);
      cur = true;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur = false;
    }
  }
  blank.push_back(cur);
  return blank;
}

void run_line_rules(const std::string& path, const std::string& raw,
                    const std::string& sibling_header,
                    std::vector<Finding>& findings) {
  const std::string s = strip_comments_and_strings(raw);
  const std::vector<Token> toks = tokenize(s);
  const LineIndex lines(s);
  rule_unordered_iteration(path, s, toks, lines, findings);
  rule_raw_entropy(path, s, toks, lines, findings);
  rule_pointer_sort(path, s, toks, lines, findings);
  rule_float_accumulate(path, s, sibling_header, toks, lines, findings);
  rule_uninit_pod_digest(path, raw, s, toks, lines, findings);
}

}  // namespace

std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const ProjectOptions& opts) {
  std::vector<Finding> findings;
  std::map<std::string, std::vector<Allow>> allows;
  std::map<std::string, std::vector<bool>> blanks;
  for (const SourceFile& f : files) {
    allows[f.path] = collect_allows(f.content, f.path, findings);
    blanks[f.path] = blank_lines(strip_comments_and_strings(f.content));
    run_line_rules(f.path, f.content, f.sibling_header, findings);
  }

  if (opts.taint || opts.locks) {
    const CallGraph graph = build_call_graph(files);
    if (opts.taint) run_taint_pass(files, graph, findings);
    if (opts.locks) run_lock_pass(files, graph, findings);
  }
  if (opts.dead_keys) run_dead_key_pass(files, findings);

  // Apply suppressions: an allow() covers findings of its rule on its own
  // line or on the next code line — lines that are blank after stripping
  // (comment-only, e.g. a wrapped reason) are skipped, so a multi-line
  // annotation comment still anchors to the statement below it.
  const auto next_code_line = [](const std::vector<bool>& blank, int from) {
    int l = from + 1;
    while (l < static_cast<int>(blank.size()) && blank[l]) ++l;
    return l;
  };
  for (Finding& f : findings) {
    if (f.rule == kBadAllow) continue;
    const auto it = allows.find(f.file);
    if (it == allows.end()) continue;
    const std::vector<bool>& blank = blanks[f.file];
    for (Allow& a : it->second) {
      if (a.rule == f.rule &&
          (a.line == f.line || next_code_line(blank, a.line) == f.line)) {
        f.suppressed = true;
        f.allow_reason = a.reason;
        a.used = true;
        break;
      }
    }
  }

  // Stale-allow auditing only covers rules whose pass actually ran: a tree
  // scanned without --taint must not call the taint waivers stale.
  std::set<std::string> active = {kUnorderedIteration, kRawEntropy,
                                  kPointerSort, kFloatAccumulate,
                                  kUninitPodDigest};
  if (opts.taint) active.insert(kTaintFlow);
  if (opts.locks) {
    active.insert(kLockOrder);
    active.insert(kUnguardedWrite);
  }
  if (opts.dead_keys) active.insert(kDeadSpecKey);
  for (const auto& [path, file_allows] : allows) {
    for (const Allow& a : file_allows) {
      if (a.used || active.count(a.rule) == 0) continue;
      findings.push_back({path, a.line, kStaleAllow,
                          "allow(" + a.rule +
                              ") suppresses nothing on this line or the "
                              "next code line — delete it",
                          false, ""});
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return findings;
}

std::vector<Finding> lint_source(const std::string& path_label,
                                 const std::string& content,
                                 const std::string& sibling_header) {
  return lint_project({{path_label, content, sibling_header}},
                      ProjectOptions{});
}

}  // namespace nexit::lint
