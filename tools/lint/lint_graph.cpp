#include "lint_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "lint_text.hpp"

namespace nexit::lint {
namespace {

/// Tokens that introduce something other than a function when followed by
/// `(` — control flow, casts, builtin-type functional casts, and specifiers.
bool non_function_word(const std::string& w) {
  static const std::set<std::string> kWords = {
      "if",           "for",         "while",       "switch",
      "catch",        "return",      "sizeof",      "alignof",
      "alignas",      "decltype",    "noexcept",    "new",
      "delete",       "throw",       "static_assert", "assert",
      "defined",      "operator",    "co_await",    "co_yield",
      "co_return",    "typeid",      "case",        "goto",
      "else",         "do",          "static_cast", "const_cast",
      "dynamic_cast", "reinterpret_cast",
      "int",          "char",        "bool",        "double",
      "float",        "long",        "short",       "unsigned",
      "signed",       "void",        "auto",        "requires",
      "explicit",     "constexpr",   "consteval",   "constinit",
      "template",     "typename",    "using",       "namespace",
      "struct",       "class",       "enum",        "union",
      "public",       "private",     "protected",   "try"};
  return kWords.count(w) != 0;
}

/// A namespace or class body: byte range of its braces plus the name it
/// contributes to qualified names of everything inside.
struct ScopeSpan {
  std::size_t begin = 0;  // offset of '{'
  std::size_t end = 0;    // offset of matching '}'
  std::string name;       // "" for anonymous namespaces/structs
};

/// Namespace and struct/class body spans of one sanitized file.
std::vector<ScopeSpan> collect_scope_spans(const std::string& s,
                                           const std::vector<Token>& toks) {
  std::vector<ScopeSpan> spans;
  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    const Token& t = toks[ti];
    if (t.text == "namespace") {
      // `namespace a::b {` — aliases (`= ...`) and using-directives are
      // ruled out by requiring a `{` right after the (optional) name.
      std::size_t p = skip_ws(s, t.end);
      std::string name;
      while (p < s.size() && (ident_char(s[p]) || s[p] == ':')) name += s[p++];
      p = skip_ws(s, p);
      if (p >= s.size() || s[p] != '{') continue;
      const std::size_t close = find_matching(s, p, '{', '}');
      if (close == std::string::npos) continue;
      spans.push_back({p, close, name});
      continue;
    }
    if (t.text != "struct" && t.text != "class") continue;
    if (ti > 0 && toks[ti - 1].text == "enum") continue;  // enum class
    std::size_t p = skip_ws(s, t.end);
    while (p + 1 < s.size() && s[p] == '[' && s[p + 1] == '[') {
      const std::size_t close = find_matching(s, p, '[', ']');
      if (close == std::string::npos) break;
      p = skip_ws(s, close + 1);
    }
    if (p >= s.size() || !ident_start(s[p])) continue;  // anonymous
    std::size_t e = p;
    while (e < s.size() && ident_char(s[e])) ++e;
    const std::string name = s.substr(p, e - p);
    // Find the introducing `{`: skip template-argument lists and a base
    // clause; bail on `;` (forward decl), `(`/`)` (elaborated type in a
    // signature), or `=` (type alias RHS).
    std::size_t q = e;
    std::size_t open = std::string::npos;
    while (q < s.size()) {
      const char c = s[q];
      if (c == '{') {
        open = q;
        break;
      }
      if (c == ';' || c == '(' || c == ')' || c == '=') break;
      if (c == '<') {
        const std::size_t close = find_matching(s, q, '<', '>');
        if (close == std::string::npos) break;
        q = close + 1;
        continue;
      }
      ++q;
    }
    if (open == std::string::npos) continue;
    const std::size_t close = find_matching(s, open, '{', '}');
    if (close == std::string::npos) continue;
    spans.push_back({open, close, name});
  }
  return spans;
}

/// Qualification contributed by the scopes containing `pos`, outermost
/// first, e.g. "nexit::obs::Registry".
std::string scope_prefix_at(const std::vector<ScopeSpan>& spans,
                            std::size_t pos) {
  // Spans were collected in token order (outer before inner for nested
  // scopes), so appending containing names in order is outermost-first.
  std::string prefix;
  for (const ScopeSpan& sp : spans) {
    if (pos <= sp.begin || pos >= sp.end || sp.name.empty()) continue;
    if (!prefix.empty()) prefix += "::";
    prefix += sp.name;
  }
  return prefix;
}

/// The spelled name at token `t` including any explicit `a::b::` prefix
/// written before it (walks back over `::`-joined identifiers).
std::string spelled_with_prefix(const std::string& s, const Token& t) {
  std::string spelled = t.text;
  std::size_t p = t.begin;
  while (p >= 2 && s[p - 1] == ':' && s[p - 2] == ':') {
    std::size_t e = p - 2;  // one past the previous component
    std::size_t b = e;
    while (b > 0 && ident_char(s[b - 1])) --b;
    if (b == e) break;  // `::name` at global scope — nothing to prepend
    spelled = s.substr(b, e - b) + "::" + spelled;
    p = b;
  }
  return spelled;
}

/// Starting at the char right after a candidate's `)`, decides whether a
/// function *definition* body follows, skipping trailing specifiers
/// (`const`, `noexcept(...)`), a trailing return type, and a constructor
/// initializer list. Returns the offset of the body `{`, or npos.
std::size_t find_definition_body(const std::string& s, std::size_t p) {
  while (p < s.size()) {
    p = skip_ws(s, p);
    if (p >= s.size()) return std::string::npos;
    const char c = s[p];
    if (c == '{') return p;
    if (c == ';' || c == ',' || c == ')' || c == ']' || c == '}' || c == '=')
      return std::string::npos;
    if (c == ':' && (p + 1 >= s.size() || s[p + 1] != ':')) {
      // Constructor initializer list: skip `name(init)` / `name{init}`
      // groups until the `{` that starts the body. An opening brace right
      // after an identifier is a brace-initializer, not the body.
      std::size_t q = p + 1;
      while (q < s.size()) {
        q = skip_ws(s, q);
        if (q >= s.size()) return std::string::npos;
        const char d = s[q];
        if (d == '(' || (d == '{' && [&] {
              const std::size_t prev = prev_nonspace(s, q);
              return prev != std::string::npos && ident_char(s[prev]);
            }())) {
          const std::size_t close =
              find_matching(s, q, d, d == '(' ? ')' : '}');
          if (close == std::string::npos) return std::string::npos;
          q = close + 1;
          continue;
        }
        if (d == '{') return q;  // the body
        if (d == ';') return std::string::npos;
        ++q;
      }
      return std::string::npos;
    }
    if (c == '<') {  // template args in a trailing return type
      const std::size_t close = find_matching(s, p, '<', '>');
      if (close == std::string::npos) return std::string::npos;
      p = close + 1;
      continue;
    }
    if (c == '(') {  // noexcept(...) / __attribute__((...))
      const std::size_t close = find_matching(s, p, '(', ')');
      if (close == std::string::npos) return std::string::npos;
      p = close + 1;
      continue;
    }
    if (c == '-' && p + 1 < s.size() && s[p + 1] == '>') {
      p += 2;
      continue;
    }
    if (c == ':' || c == '&' || c == '*') {
      ++p;
      continue;
    }
    if (ident_start(c)) {
      std::size_t e = p;
      while (e < s.size() && ident_char(s[e])) ++e;
      p = e;  // const / noexcept / override / final / trailing type tokens
      continue;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

}  // namespace

int CallGraph::enclosing_function(int file_index, std::size_t pos) const {
  int best = -1;
  std::size_t best_size = 0;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionDef& f = functions[i];
    if (f.file != file_index || pos <= f.body_begin || pos >= f.body_end)
      continue;
    const std::size_t size = f.body_end - f.body_begin;
    if (best < 0 || size < best_size) {
      best = static_cast<int>(i);
      best_size = size;
    }
  }
  return best;
}

std::vector<int> CallGraph::resolve(const std::string& spelled) const {
  std::vector<int> out;
  if (spelled.find("::") == std::string::npos) {
    auto [b, e] = by_name.equal_range(spelled);
    for (auto it = b; it != e; ++it) out.push_back(it->second);
    return out;
  }
  const std::string suffix = "::" + spelled;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const std::string& q = functions[i].qualified;
    if (q == spelled || path_ends_with(q, suffix))
      out.push_back(static_cast<int>(i));
  }
  return out;
}

CallGraph build_call_graph(const std::vector<SourceFile>& files) {
  CallGraph graph;
  graph.sanitized.reserve(files.size());
  for (const SourceFile& f : files)
    graph.sanitized.push_back(strip_comments_and_strings(f.content));

  // Definitions first, so call resolution sees the whole program.
  // def_header_tokens[file] = begin offsets of tokens that ARE definition
  // names (excluded from the call scan below).
  std::vector<std::set<std::size_t>> def_header_tokens(files.size());
  std::vector<std::vector<ScopeSpan>> spans(files.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& s = graph.sanitized[fi];
    const std::vector<Token> toks = tokenize(s);
    const LineIndex lines(s);
    spans[fi] = collect_scope_spans(s, toks);
    for (const Token& t : toks) {
      if (non_function_word(t.text)) continue;
      if (member_access_before(s, t.begin)) continue;
      // The LAST element of a constructor initializer list
      // (`: n_(n), scale_(1.0) {`) is followed by the body brace and would
      // otherwise scan as a one-line definition. Initializer elements are
      // unqualified names directly preceded by `,` or a single `:` — a
      // position no real definition name can occupy.
      const std::size_t before = prev_nonspace(s, t.begin);
      if (before != std::string::npos &&
          (s[before] == ',' ||
           (s[before] == ':' && (before == 0 || s[before - 1] != ':'))))
        continue;
      const std::size_t open = skip_ws(s, t.end);
      if (open >= s.size() || s[open] != '(') continue;
      const std::size_t close = find_matching(s, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::size_t body = find_definition_body(s, close + 1);
      if (body == std::string::npos) continue;
      const std::size_t body_close = find_matching(s, body, '{', '}');
      if (body_close == std::string::npos) continue;
      const std::string spelled = spelled_with_prefix(s, t);
      const std::string prefix = scope_prefix_at(spans[fi], t.begin);
      FunctionDef def;
      def.qualified = prefix.empty() ? spelled : prefix + "::" + spelled;
      def.name = t.text;
      def.file = static_cast<int>(fi);
      def.line = lines.line_of(t.begin);
      def.body_begin = body;
      def.body_end = body_close;
      def_header_tokens[fi].insert(t.begin);
      graph.by_name.insert({def.name, static_cast<int>(graph.functions.size())});
      graph.functions.push_back(std::move(def));
    }
  }

  // Call sites: every remaining `name(` inside some definition body.
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& s = graph.sanitized[fi];
    const LineIndex lines(s);
    for (const Token& t : tokenize(s)) {
      if (non_function_word(t.text)) continue;
      if (def_header_tokens[fi].count(t.begin) != 0) continue;
      const std::size_t open = skip_ws(s, t.end);
      if (open >= s.size() || s[open] != '(') continue;
      const int caller =
          graph.enclosing_function(static_cast<int>(fi), t.begin);
      if (caller < 0) continue;
      for (int callee : graph.resolve(spelled_with_prefix(s, t))) {
        graph.edges.push_back({caller, callee, lines.line_of(t.begin)});
      }
    }
  }
  return graph;
}

std::string to_dot(const CallGraph& graph,
                   const std::vector<SourceFile>& files) {
  std::set<std::string> nodes;
  for (const FunctionDef& f : graph.functions) nodes.insert(f.qualified);
  std::set<std::pair<std::string, std::string>> edges;
  for (const CallEdge& e : graph.edges) {
    const std::string& a = graph.functions[e.caller].qualified;
    const std::string& b = graph.functions[e.callee].qualified;
    if (a != b) edges.insert({a, b});
  }
  std::ostringstream os;
  os << "// nexit determinism-lint call graph: " << files.size() << " files, "
     << nodes.size() << " functions (overload sets merged), " << edges.size()
     << " call edges\n";
  os << "digraph nexit_callgraph {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (const std::string& n : nodes) os << "  \"" << n << "\";\n";
  for (const auto& [a, b] : edges)
    os << "  \"" << a << "\" -> \"" << b << "\";\n";
  os << "}\n";
  return os.str();
}

}  // namespace nexit::lint
