#include "lint_sarif.hpp"

#include <cstdio>
#include <sstream>

namespace nexit::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  os << "  \"version\": \"2.1.0\",\n";
  os << "  \"runs\": [\n    {\n";
  os << "      \"tool\": {\n        \"driver\": {\n";
  os << "          \"name\": \"determinism_lint\",\n";
  os << "          \"informationUri\": "
        "\"https://example.invalid/nexit/tools/lint\",\n";
  os << "          \"rules\": [\n";
  const auto& rules = rule_table();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\n";
    os << "              \"id\": \"" << json_escape(rules[i].name) << "\",\n";
    os << "              \"shortDescription\": { \"text\": \""
       << json_escape(rules[i].summary) << "\" },\n";
    os << "              \"fullDescription\": { \"text\": \""
       << json_escape(rules[i].rationale) << "\" }\n";
    os << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n        }\n      },\n";
  os << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n";
    os << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n";
    os << "          \"level\": \"" << (f.suppressed ? "note" : "error")
       << "\",\n";
    os << "          \"message\": { \"text\": \"" << json_escape(f.message)
       << "\" },\n";
    os << "          \"locations\": [\n            {\n";
    os << "              \"physicalLocation\": {\n";
    os << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(f.file) << "\" },\n";
    os << "                \"region\": { \"startLine\": " << f.line
       << " }\n";
    os << "              }\n            }\n          ]";
    if (f.suppressed) {
      os << ",\n          \"suppressions\": [\n            {\n";
      os << "              \"kind\": \"inSource\",\n";
      os << "              \"justification\": \""
         << json_escape(f.allow_reason) << "\"\n";
      os << "            }\n          ]";
    }
    os << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }\n  ]\n}\n";
  return os.str();
}

}  // namespace nexit::lint
