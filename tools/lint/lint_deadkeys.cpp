// dead-spec-key: a registry entry that nothing reads is configuration
// theater — it serializes, documents, and digests, but changing it cannot
// change a run. The pass collects every key registered in the KeyDoc
// table and via sweep_only() (string literals read from the RAW text — the
// sanitized view blanks them — at positions located via the sanitized
// structure), then looks for a *read*: an occurrence of the quoted key
// whose preceding context contains a flags/spec accessor
// (get_* / merge_* / axis_values / has). bench/ and examples/ shims spell
// flag names too, so reads only count outside those trees.

#include <map>
#include <set>

#include "lint_passes.hpp"
#include "lint_text.hpp"

namespace nexit::lint {
namespace {

const char* const kDeadSpecKey = "dead-spec-key";

/// Reader calls that consume a key's value. to_key_values()/emplace_back
/// (serialization) and find_spec_key (doc lookup) are deliberately absent:
/// spelling a key while writing it out is not a read.
const char* const kReaders[] = {
    "get_string",  "get_int",    "get_bool",    "get_double",
    "get_choice",  "get_count",  "merge_choice", "merge_count",
    "merge_targets", "merge_events", "axis_values", "has"};

bool reader_context(const std::string& raw, std::size_t quote_pos) {
  // The accessor call the literal is an argument of starts at most a few
  // lines earlier (wrapped call); 200 chars of context covers it.
  const std::size_t from = quote_pos > 200 ? quote_pos - 200 : 0;
  const std::string ctx = raw.substr(from, quote_pos - from);
  for (const char* r : kReaders) {
    std::size_t at = ctx.find(r);
    while (at != std::string::npos) {
      const std::size_t after = at + std::string(r).size();
      const bool word_start = at == 0 || !ident_char(ctx[at - 1]);
      const std::size_t p = skip_ws(ctx, after);
      if (word_start && (after >= ctx.size() || !ident_char(ctx[after])) &&
          p < ctx.size() && ctx[p] == '(')
        return true;
      at = ctx.find(r, at + 1);
    }
  }
  return false;
}

/// Reads the string literal starting at `raw[pos] == '"'`.
std::string read_string_at(const std::string& raw, std::size_t pos) {
  std::string out;
  for (std::size_t i = pos + 1; i < raw.size(); ++i) {
    if (raw[i] == '\\') {
      ++i;
      continue;  // keys never need escapes; skip conservatively
    }
    if (raw[i] == '"') break;
    out += raw[i];
  }
  return out;
}

struct RegistryEntry {
  std::string key;
  int file = -1;
  int line = 0;
};

/// Keys registered in `files[fi]`: elements of a KeyDoc array (the first
/// string literal of each `{...}` aggregate at nesting depth 1) and
/// sweep_only("<key>", ...) calls.
void collect_entries(const std::vector<SourceFile>& files, std::size_t fi,
                     const std::string& sanitized,
                     std::vector<RegistryEntry>& entries) {
  const std::string& raw = files[fi].content;
  const LineIndex lines(raw);
  for (const Token& t : tokenize(sanitized)) {
    if (t.text == "KeyDoc") {
      // `KeyDoc docs[] = { {"key", ...}, ... }` — find the aggregate. The
      // `=` must be near the token, else this KeyDoc mention is a return
      // type or parameter, not the table.
      const std::size_t eq = sanitized.find('=', t.end);
      if (eq == std::string::npos || eq > t.end + 40) continue;
      const std::size_t open = skip_ws(sanitized, eq + 1);
      if (open >= sanitized.size() || sanitized[open] != '{') continue;
      const std::size_t close = find_matching(sanitized, open, '{', '}');
      if (close == std::string::npos) continue;
      int depth = 0;
      for (std::size_t i = open; i <= close; ++i) {
        const char c = sanitized[i];
        if (c == '{') {
          ++depth;
          if (depth == 2) {
            // First string literal of this element, from the RAW text.
            const std::size_t q = skip_ws(raw, i + 1);
            if (q < raw.size() && raw[q] == '"') {
              const std::string key = read_string_at(raw, q);
              if (!key.empty())
                entries.push_back(
                    {key, static_cast<int>(fi), lines.line_of(q)});
            }
          }
        } else if (c == '}') {
          --depth;
        }
      }
    } else if (t.text == "sweep_only") {
      const std::size_t open = skip_ws(sanitized, t.end);
      if (open >= sanitized.size() || sanitized[open] != '(') continue;
      const std::size_t q = skip_ws(raw, open + 1);
      if (q >= raw.size() || raw[q] != '"') continue;
      const std::string key = read_string_at(raw, q);
      if (!key.empty())
        entries.push_back({key, static_cast<int>(fi), lines.line_of(q)});
    }
  }
}

bool shim_path(const std::string& path) {
  return path.find("bench/") != std::string::npos ||
         path.find("examples/") != std::string::npos;
}

}  // namespace

void run_dead_key_pass(const std::vector<SourceFile>& files,
                       std::vector<Finding>& findings) {
  std::vector<RegistryEntry> entries;
  std::vector<std::string> sanitized(files.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    sanitized[fi] = strip_comments_and_strings(files[fi].content);
    collect_entries(files, fi, sanitized[fi], entries);
  }
  if (entries.empty()) return;

  std::set<std::string> read_keys;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    if (shim_path(files[fi].path)) continue;
    const std::string& raw = files[fi].content;
    for (const RegistryEntry& e : entries) {
      if (read_keys.count(e.key) != 0) continue;
      const std::string quoted = "\"" + e.key + "\"";
      std::size_t at = raw.find(quoted);
      while (at != std::string::npos) {
        if (reader_context(raw, at)) {
          read_keys.insert(e.key);
          break;
        }
        at = raw.find(quoted, at + 1);
      }
    }
  }

  std::set<std::string> flagged;
  for (const RegistryEntry& e : entries) {
    if (read_keys.count(e.key) != 0) continue;
    if (!flagged.insert(e.key).second) continue;
    findings.push_back(
        {files[e.file].path, e.line, kDeadSpecKey,
         "spec key `" + e.key +
             "` is registered but never read by any flags/spec accessor — "
             "it serializes and digests yet cannot affect a run; wire it "
             "up or delete the registry entry",
         false, ""});
  }
}

}  // namespace nexit::lint
