// Tests for the determinism lint: every rule is proven by a fixture it
// flags (tools/lint/fixtures/*_bad.cpp), every allow() annotation fixture
// suppresses cleanly (*_allowed.cpp), and every near-miss stays unflagged
// (*_clean.cpp). Expected findings are written in the fixtures themselves
// as `// HIT: <rule>` (same line) / `// HIT-NEXT: <rule>` (next line)
// markers, so fixture and expectation cannot drift apart.
//
// The cross-TU passes are proven the same way by the multi-file groups
// under fixtures/project/: files named `<group>__<part>.cpp` are linted
// together through lint_project() with every pass on, and the group's
// `_bad` / `_allowed` / `_clean` suffix carries the same contract as
// above. The call-graph indexer is pinned by fixtures/project/
// callgraph_names.cpp, whose `// DEF:` markers must match the indexed
// symbols exactly — in both directions.

#include "lint_core.hpp"
#include "lint_graph.hpp"
#include "lint_sarif.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using nexit::lint::Finding;
using nexit::lint::lint_project;
using nexit::lint::lint_source;
using nexit::lint::ProjectOptions;
using nexit::lint::SourceFile;

namespace {

#ifndef LINT_FIXTURE_DIR
#error "build must define LINT_FIXTURE_DIR"
#endif

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path fixture_dir() { return fs::path(LINT_FIXTURE_DIR); }

using LineRule = std::pair<int, std::string>;

/// Expected findings of a fixture, read from its HIT/HIT-NEXT markers.
std::set<LineRule> expected_hits(const std::string& content) {
  std::set<LineRule> hits;
  std::istringstream in(content);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    for (const auto& [tag, offset] :
         std::vector<std::pair<std::string, int>>{{"HIT-NEXT:", 1},
                                                  {"HIT:", 0}}) {
      const std::size_t at = line.find(tag);
      if (at == std::string::npos) continue;
      std::istringstream rest(line.substr(at + tag.size()));
      std::string rule;
      rest >> rule;
      hits.insert({lineno + offset, rule});
      break;  // HIT-NEXT contains "HIT:" as a substring; match once
    }
  }
  return hits;
}

std::set<LineRule> unsuppressed(const std::vector<Finding>& findings) {
  std::set<LineRule> got;
  for (const Finding& f : findings)
    if (!f.suppressed) got.insert({f.line, f.rule});
  return got;
}

std::vector<fs::path> fixtures_matching(const std::string& suffix) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(fixture_dir())) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  EXPECT_FALSE(out.empty()) << "no fixtures matching *" << suffix;
  return out;
}

// ---------------------------------------------------------------------------
// Project fixtures: multi-file groups under fixtures/project/, linted
// together through lint_project() with every cross-TU pass enabled.
// `<group>__<part>.cpp` files form one group; a single `<group>.cpp` is a
// group of one. The group name's `_bad` / `_allowed` / `_clean` suffix
// selects the contract.
// ---------------------------------------------------------------------------

fs::path project_dir() { return fixture_dir() / "project"; }

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Group name -> sorted file paths. Groups are split on the `__` part
/// separator; the callgraph fixture (no _bad/_allowed/_clean suffix) comes
/// along and is simply never selected by the sweep tests.
std::map<std::string, std::vector<fs::path>> project_groups() {
  std::map<std::string, std::vector<fs::path>> groups;
  for (const auto& e : fs::directory_iterator(project_dir())) {
    if (!e.is_regular_file()) continue;
    std::string stem = e.path().stem().string();
    const std::size_t sep = stem.find("__");
    if (sep != std::string::npos) stem = stem.substr(0, sep);
    groups[stem].push_back(e.path());
  }
  for (auto& [name, paths] : groups) std::sort(paths.begin(), paths.end());
  EXPECT_FALSE(groups.empty()) << "no project fixtures under " << project_dir();
  return groups;
}

std::vector<SourceFile> load_group(const std::vector<fs::path>& paths) {
  std::vector<SourceFile> files;
  for (const fs::path& p : paths)
    files.push_back({p.filename().string(), read_file(p), ""});
  return files;
}

constexpr ProjectOptions kAllPasses{true, true, true};

using FileLineRule = std::tuple<std::string, int, std::string>;

std::set<FileLineRule> group_expected_hits(const std::vector<SourceFile>& fs) {
  std::set<FileLineRule> want;
  for (const SourceFile& f : fs)
    for (const auto& [line, rule] : expected_hits(f.content))
      want.insert({f.path, line, rule});
  return want;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fixture sweep: *_bad flags exactly its markers, *_allowed suppresses
// everything, *_clean is silent.
// ---------------------------------------------------------------------------

TEST(LintFixtures, BadFixturesFlagExactlyTheirMarkedLines) {
  for (const fs::path& p : fixtures_matching("_bad.cpp")) {
    const std::string content = read_file(p);
    const std::set<LineRule> want = expected_hits(content);
    ASSERT_FALSE(want.empty()) << p << " has no HIT markers";
    const std::set<LineRule> got =
        unsuppressed(lint_source(p.filename().string(), content));
    EXPECT_EQ(got, want) << "in fixture " << p;
  }
}

TEST(LintFixtures, AllowedFixturesAreFullySuppressed) {
  for (const fs::path& p : fixtures_matching("_allowed.cpp")) {
    const std::string content = read_file(p);
    const auto findings = lint_source(p.filename().string(), content);
    std::size_t suppressed = 0;
    for (const Finding& f : findings) {
      EXPECT_TRUE(f.suppressed)
          << p << ":" << f.line << " [" << f.rule << "] " << f.message;
      if (f.suppressed) {
        ++suppressed;
        EXPECT_FALSE(f.allow_reason.empty());
      }
    }
    EXPECT_GT(suppressed, 0u) << p << " suppresses nothing — fixture rotted";
  }
}

TEST(LintFixtures, CleanFixturesProduceNoFindings) {
  for (const fs::path& p : fixtures_matching("_clean.cpp")) {
    const std::string content = read_file(p);
    for (const Finding& f : lint_source(p.filename().string(), content)) {
      ADD_FAILURE() << p << ":" << f.line << " [" << f.rule << "] "
                    << f.message;
    }
  }
}

TEST(LintFixtures, EveryRuleIsProvenByAFixture) {
  std::set<std::string> flagged;
  for (const fs::path& p : fixtures_matching("_bad.cpp"))
    for (const auto& [line, rule] : expected_hits(read_file(p)))
      flagged.insert(rule);
  // The cross-TU pass rules are proven by the multi-file groups.
  for (const auto& [name, paths] : project_groups()) {
    if (!ends_with(name, "_bad")) continue;
    for (const fs::path& p : paths)
      for (const auto& [line, rule] : expected_hits(read_file(p)))
        flagged.insert(rule);
  }
  for (const auto& rule : nexit::lint::rule_table())
    EXPECT_TRUE(flagged.count(rule.name) != 0)
        << "rule " << rule.name << " has no bad-fixture proving it fires";
}

// ---------------------------------------------------------------------------
// Project-fixture sweep: each group runs through lint_project() with every
// cross-TU pass on, under the same bad/allowed/clean contract as the
// single-file sweep. A taint group's HIT marker sits in the SOURCE file
// even when the sink lives in the other TU — that asymmetry is the point.
// ---------------------------------------------------------------------------

TEST(LintProjectFixtures, BadGroupsFlagExactlyTheirMarkedLines) {
  bool any = false;
  for (const auto& [name, paths] : project_groups()) {
    if (!ends_with(name, "_bad")) continue;
    any = true;
    const std::vector<SourceFile> files = load_group(paths);
    const std::set<FileLineRule> want = group_expected_hits(files);
    ASSERT_FALSE(want.empty()) << "group " << name << " has no HIT markers";
    std::set<FileLineRule> got;
    for (const Finding& f : lint_project(files, kAllPasses))
      if (!f.suppressed) got.insert({f.file, f.line, f.rule});
    EXPECT_EQ(got, want) << "in project group " << name;
  }
  EXPECT_TRUE(any) << "no *_bad project groups";
}

TEST(LintProjectFixtures, AllowedGroupsAreFullySuppressed) {
  bool any = false;
  for (const auto& [name, paths] : project_groups()) {
    if (!ends_with(name, "_allowed")) continue;
    any = true;
    const std::vector<SourceFile> files = load_group(paths);
    std::size_t suppressed = 0;
    for (const Finding& f : lint_project(files, kAllPasses)) {
      EXPECT_TRUE(f.suppressed)
          << name << ": " << f.file << ":" << f.line << " [" << f.rule << "] "
          << f.message;
      if (f.suppressed) {
        ++suppressed;
        EXPECT_FALSE(f.allow_reason.empty());
      }
    }
    EXPECT_GT(suppressed, 0u) << name << " suppresses nothing — group rotted";
  }
  EXPECT_TRUE(any) << "no *_allowed project groups";
}

TEST(LintProjectFixtures, CleanGroupsProduceNoFindings) {
  bool any = false;
  for (const auto& [name, paths] : project_groups()) {
    if (!ends_with(name, "_clean")) continue;
    any = true;
    const std::vector<SourceFile> files = load_group(paths);
    for (const Finding& f : lint_project(files, kAllPasses)) {
      ADD_FAILURE() << name << ": " << f.file << ":" << f.line << " ["
                    << f.rule << "] " << f.message;
    }
  }
  EXPECT_TRUE(any) << "no *_clean project groups";
}

// ---------------------------------------------------------------------------
// Call-graph indexer: the DEF markers in callgraph_names.cpp are the
// complete set of symbols the indexer must produce — missing and invented
// definitions both fail.
// ---------------------------------------------------------------------------

TEST(LintCallGraph, IndexesQualifiedAndOverloadedNames) {
  const fs::path p = project_dir() / "callgraph_names.cpp";
  const std::string content = read_file(p);

  std::multiset<std::string> want;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t at = line.find("// DEF:");
    if (at == std::string::npos) continue;
    std::istringstream rest(line.substr(at + 7));
    std::string sym;
    rest >> sym;
    want.insert(sym);
  }
  ASSERT_FALSE(want.empty()) << p << " has no DEF markers";

  const std::vector<SourceFile> files = {{p.filename().string(), content, ""}};
  const nexit::lint::CallGraph graph = nexit::lint::build_call_graph(files);

  std::multiset<std::string> got;
  for (const auto& fn : graph.functions) got.insert(fn.qualified);
  EXPECT_EQ(got, want) << "indexed symbols drifted from the DEF markers";

  // Overload sets resolve as a set; suffix match crosses qualification.
  EXPECT_EQ(graph.resolve("twice").size(), 2u);
  EXPECT_EQ(graph.resolve("inner::twice").size(), 2u);
  EXPECT_EQ(graph.resolve("outer::inner::twice").size(), 2u);
  EXPECT_EQ(graph.resolve("helper").size(), 1u);
  EXPECT_EQ(graph.resolve("Widget::reset").size(), 1u);
  EXPECT_TRUE(graph.resolve("no_such_function").empty());

  // helper() calls inner::twice(2): an edge to every overload it could
  // reach, attributed to the right caller.
  int helper_idx = -1;
  for (std::size_t i = 0; i < graph.functions.size(); ++i)
    if (graph.functions[i].qualified == "outer::helper")
      helper_idx = static_cast<int>(i);
  ASSERT_GE(helper_idx, 0);
  std::size_t helper_calls_twice = 0;
  for (const auto& e : graph.edges)
    if (e.caller == helper_idx &&
        graph.functions[e.callee].name == "twice")
      ++helper_calls_twice;
  EXPECT_EQ(helper_calls_twice, 2u) << "call edge should reach both overloads";

  // The DOT export mentions every indexed symbol and is byte-stable.
  const std::string dot = nexit::lint::to_dot(graph, files);
  for (const auto& sym : std::set<std::string>(want.begin(), want.end()))
    EXPECT_NE(dot.find(sym), std::string::npos) << sym << " missing from DOT";
  EXPECT_EQ(dot, nexit::lint::to_dot(graph, files));
}

// ---------------------------------------------------------------------------
// SARIF export: 2.1.0 shape, suppressions carry the allow() reason.
// ---------------------------------------------------------------------------

TEST(LintSarif, EmitsValidShapeWithSuppressions) {
  // Lint the flagged and the waived taint group separately (the groups
  // deliberately reuse one helper name), then export one combined run —
  // so the SARIF carries both an error and a suppressed note.
  std::vector<Finding> findings;
  for (const char* group : {"taint_cross_bad", "taint_cross_allowed"}) {
    std::vector<SourceFile> files;
    for (const char* part : {"__timer.cpp", "__report.cpp"}) {
      const std::string name = std::string(group) + part;
      files.push_back({name, read_file(project_dir() / name), ""});
    }
    for (Finding& f : lint_project(files, kAllPasses))
      findings.push_back(std::move(f));
  }
  const std::string sarif = nexit::lint::to_sarif(findings);

  for (const char* needle :
       {"\"version\": \"2.1.0\"",
        "json.schemastore.org/sarif-2.1.0.json",
        "\"name\": \"determinism_lint\"",
        "\"ruleId\": \"taint-flow\"",
        "\"level\": \"error\"",   // the unwaived flow
        "\"level\": \"note\"",    // the waived flow, reported as suppressed
        "\"kind\": \"inSource\"",
        "wall-clock duration feeds a progress line only",
        "taint_cross_bad__timer.cpp",
        "\"startLine\": "})
    EXPECT_NE(sarif.find(needle), std::string::npos)
        << "SARIF output missing: " << needle;

  // Every rule of the table is declared in the driver's rule metadata.
  for (const auto& rule : nexit::lint::rule_table())
    EXPECT_NE(sarif.find("\"id\": \"" + rule.name + "\""), std::string::npos)
        << "rule " << rule.name << " missing from SARIF driver rules";

  EXPECT_EQ(sarif, nexit::lint::to_sarif(findings)) << "SARIF not byte-stable";
}

// ---------------------------------------------------------------------------
// Engine unit tests
// ---------------------------------------------------------------------------

TEST(LintEngine, RuleTableNamesAreUniqueAndKnown) {
  std::set<std::string> seen;
  for (const auto& r : nexit::lint::rule_table()) {
    EXPECT_TRUE(seen.insert(r.name).second) << "duplicate rule " << r.name;
    EXPECT_TRUE(nexit::lint::known_rule(r.name));
    EXPECT_FALSE(r.summary.empty());
    EXPECT_FALSE(r.rationale.empty());
  }
  EXPECT_FALSE(nexit::lint::known_rule("no-such-rule"));
}

TEST(LintEngine, StripPreservesLayoutAndBlanksLiterals) {
  const std::string src =
      "int a = 1; // time(nullptr)\n"
      "const char* s = \"rand()\";\n"
      "/* srand(1); */ int b = 2;\n";
  const std::string out = nexit::lint::strip_comments_and_strings(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int a = 1;"), std::string::npos);
  EXPECT_NE(out.find("int b = 2;"), std::string::npos);
}

TEST(LintEngine, LiteralsAndCommentsCannotTriggerRules) {
  const std::string src =
      "#include <string>\n"
      "// std::random_device in a comment\n"
      "std::string s() { return \"system_clock\"; }\n";
  EXPECT_TRUE(lint_source("x.cpp", src).empty());
}

TEST(LintEngine, CanonicalHelperFilesAreExemptByPath) {
  const std::string accum =
      "double sum(const double* xs, int n) {\n"
      "  double total = 0;\n"
      "  for (int i = 0; i < n; ++i) total += xs[i];\n"
      "  return total;\n"
      "}\n";
  EXPECT_FALSE(lint_source("src/sim/foo.cpp", accum).empty());
  EXPECT_TRUE(lint_source("src/util/stats.cpp", accum).empty());
  EXPECT_TRUE(lint_source("src/routing/loads.cpp", accum).empty());
  EXPECT_TRUE(lint_source("src/metrics/metrics.cpp", accum).empty());

  const std::string entropy = "int f() { return rand(); }\n";
  EXPECT_FALSE(lint_source("src/core/foo.cpp", entropy).empty());
  EXPECT_TRUE(lint_source("src/util/rng.cpp", entropy).empty());
  EXPECT_TRUE(lint_source("src/runtime/clock.cpp", entropy).empty());

  // The one sanctioned steady_clock site is obs::WallClock; the identical
  // snippet anywhere else is a raw-entropy finding.
  const std::string stopwatch =
      "#include <chrono>\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("src/obs/wall_clock.hpp", stopwatch).empty());
  EXPECT_FALSE(lint_source("src/sim/scenarios.cpp", stopwatch).empty());
  EXPECT_FALSE(lint_source("bench/micro_incremental.cpp", stopwatch).empty());
}

TEST(LintEngine, SiblingHeaderInformsFloatAccumulate) {
  const std::string header = "class M { double acc_ = 0; void tick(); };\n";
  const std::string source =
      "void M::tick() {\n"
      "  for (int i = 0; i < 3; ++i) {\n"
      "    acc_ += 0.5;\n"
      "  }\n"
      "}\n";
  // Without the header the member's type is unknown — no finding.
  EXPECT_TRUE(lint_source("src/x/m.cpp", source).empty());
  const auto findings = lint_source("src/x/m.cpp", source, header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-accumulate");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintEngine, AllowOnPreviousLineSuppresses) {
  const std::string src =
      "// nexit-lint: allow(raw-entropy): seeding the demo only\n"
      "int f() { return rand(); }\n";
  const auto findings = lint_source("x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].allow_reason, "seeding the demo only");
}

TEST(LintEngine, AllowDoesNotLeakToOtherRulesOrFarLines) {
  const std::string src =
      "// nexit-lint: allow(float-accumulate): wrong rule for the finding\n"
      "int f() { return rand(); }\n";
  const auto findings = lint_source("x.cpp", src);
  // The rand() finding stays, and the unused annotation goes stale.
  std::set<std::string> rules;
  for (const Finding& f : findings) {
    EXPECT_FALSE(f.suppressed);
    rules.insert(f.rule);
  }
  EXPECT_EQ(rules, (std::set<std::string>{"raw-entropy", "stale-allow"}));
}

TEST(LintEngine, FindingsAreSortedAndDeterministic) {
  const std::string src =
      "#include <cstdlib>\n"
      "int a() { return rand(); }\n"
      "int b() { return rand(); }\n";
  const auto f1 = lint_source("x.cpp", src);
  const auto f2 = lint_source("x.cpp", src);
  ASSERT_EQ(f1.size(), 2u);
  EXPECT_LT(f1[0].line, f1[1].line);
  ASSERT_EQ(f2.size(), f1.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].line, f2[i].line);
    EXPECT_EQ(f1[i].rule, f2[i].rule);
    EXPECT_EQ(f1[i].message, f2[i].message);
  }
}
