// Tests for the determinism lint: every rule is proven by a fixture it
// flags (tools/lint/fixtures/*_bad.cpp), every allow() annotation fixture
// suppresses cleanly (*_allowed.cpp), and every near-miss stays unflagged
// (*_clean.cpp). Expected findings are written in the fixtures themselves
// as `// HIT: <rule>` (same line) / `// HIT-NEXT: <rule>` (next line)
// markers, so fixture and expectation cannot drift apart.

#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using nexit::lint::Finding;
using nexit::lint::lint_source;

namespace {

#ifndef LINT_FIXTURE_DIR
#error "build must define LINT_FIXTURE_DIR"
#endif

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path fixture_dir() { return fs::path(LINT_FIXTURE_DIR); }

using LineRule = std::pair<int, std::string>;

/// Expected findings of a fixture, read from its HIT/HIT-NEXT markers.
std::set<LineRule> expected_hits(const std::string& content) {
  std::set<LineRule> hits;
  std::istringstream in(content);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    for (const auto& [tag, offset] :
         std::vector<std::pair<std::string, int>>{{"HIT-NEXT:", 1},
                                                  {"HIT:", 0}}) {
      const std::size_t at = line.find(tag);
      if (at == std::string::npos) continue;
      std::istringstream rest(line.substr(at + tag.size()));
      std::string rule;
      rest >> rule;
      hits.insert({lineno + offset, rule});
      break;  // HIT-NEXT contains "HIT:" as a substring; match once
    }
  }
  return hits;
}

std::set<LineRule> unsuppressed(const std::vector<Finding>& findings) {
  std::set<LineRule> got;
  for (const Finding& f : findings)
    if (!f.suppressed) got.insert({f.line, f.rule});
  return got;
}

std::vector<fs::path> fixtures_matching(const std::string& suffix) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(fixture_dir())) {
    const std::string name = e.path().filename().string();
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  EXPECT_FALSE(out.empty()) << "no fixtures matching *" << suffix;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fixture sweep: *_bad flags exactly its markers, *_allowed suppresses
// everything, *_clean is silent.
// ---------------------------------------------------------------------------

TEST(LintFixtures, BadFixturesFlagExactlyTheirMarkedLines) {
  for (const fs::path& p : fixtures_matching("_bad.cpp")) {
    const std::string content = read_file(p);
    const std::set<LineRule> want = expected_hits(content);
    ASSERT_FALSE(want.empty()) << p << " has no HIT markers";
    const std::set<LineRule> got =
        unsuppressed(lint_source(p.filename().string(), content));
    EXPECT_EQ(got, want) << "in fixture " << p;
  }
}

TEST(LintFixtures, AllowedFixturesAreFullySuppressed) {
  for (const fs::path& p : fixtures_matching("_allowed.cpp")) {
    const std::string content = read_file(p);
    const auto findings = lint_source(p.filename().string(), content);
    std::size_t suppressed = 0;
    for (const Finding& f : findings) {
      EXPECT_TRUE(f.suppressed)
          << p << ":" << f.line << " [" << f.rule << "] " << f.message;
      if (f.suppressed) {
        ++suppressed;
        EXPECT_FALSE(f.allow_reason.empty());
      }
    }
    EXPECT_GT(suppressed, 0u) << p << " suppresses nothing — fixture rotted";
  }
}

TEST(LintFixtures, CleanFixturesProduceNoFindings) {
  for (const fs::path& p : fixtures_matching("_clean.cpp")) {
    const std::string content = read_file(p);
    for (const Finding& f : lint_source(p.filename().string(), content)) {
      ADD_FAILURE() << p << ":" << f.line << " [" << f.rule << "] "
                    << f.message;
    }
  }
}

TEST(LintFixtures, EveryRuleIsProvenByAFixture) {
  std::set<std::string> flagged;
  for (const fs::path& p : fixtures_matching("_bad.cpp"))
    for (const auto& [line, rule] : expected_hits(read_file(p)))
      flagged.insert(rule);
  for (const auto& rule : nexit::lint::rule_table())
    EXPECT_TRUE(flagged.count(rule.name) != 0)
        << "rule " << rule.name << " has no bad-fixture proving it fires";
}

// ---------------------------------------------------------------------------
// Engine unit tests
// ---------------------------------------------------------------------------

TEST(LintEngine, RuleTableNamesAreUniqueAndKnown) {
  std::set<std::string> seen;
  for (const auto& r : nexit::lint::rule_table()) {
    EXPECT_TRUE(seen.insert(r.name).second) << "duplicate rule " << r.name;
    EXPECT_TRUE(nexit::lint::known_rule(r.name));
    EXPECT_FALSE(r.summary.empty());
    EXPECT_FALSE(r.rationale.empty());
  }
  EXPECT_FALSE(nexit::lint::known_rule("no-such-rule"));
}

TEST(LintEngine, StripPreservesLayoutAndBlanksLiterals) {
  const std::string src =
      "int a = 1; // time(nullptr)\n"
      "const char* s = \"rand()\";\n"
      "/* srand(1); */ int b = 2;\n";
  const std::string out = nexit::lint::strip_comments_and_strings(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int a = 1;"), std::string::npos);
  EXPECT_NE(out.find("int b = 2;"), std::string::npos);
}

TEST(LintEngine, LiteralsAndCommentsCannotTriggerRules) {
  const std::string src =
      "#include <string>\n"
      "// std::random_device in a comment\n"
      "std::string s() { return \"system_clock\"; }\n";
  EXPECT_TRUE(lint_source("x.cpp", src).empty());
}

TEST(LintEngine, CanonicalHelperFilesAreExemptByPath) {
  const std::string accum =
      "double sum(const double* xs, int n) {\n"
      "  double total = 0;\n"
      "  for (int i = 0; i < n; ++i) total += xs[i];\n"
      "  return total;\n"
      "}\n";
  EXPECT_FALSE(lint_source("src/sim/foo.cpp", accum).empty());
  EXPECT_TRUE(lint_source("src/util/stats.cpp", accum).empty());
  EXPECT_TRUE(lint_source("src/routing/loads.cpp", accum).empty());
  EXPECT_TRUE(lint_source("src/metrics/metrics.cpp", accum).empty());

  const std::string entropy = "int f() { return rand(); }\n";
  EXPECT_FALSE(lint_source("src/core/foo.cpp", entropy).empty());
  EXPECT_TRUE(lint_source("src/util/rng.cpp", entropy).empty());
  EXPECT_TRUE(lint_source("src/runtime/clock.cpp", entropy).empty());

  // The one sanctioned steady_clock site is obs::WallClock; the identical
  // snippet anywhere else is a raw-entropy finding.
  const std::string stopwatch =
      "#include <chrono>\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("src/obs/wall_clock.hpp", stopwatch).empty());
  EXPECT_FALSE(lint_source("src/sim/scenarios.cpp", stopwatch).empty());
  EXPECT_FALSE(lint_source("bench/micro_incremental.cpp", stopwatch).empty());
}

TEST(LintEngine, SiblingHeaderInformsFloatAccumulate) {
  const std::string header = "class M { double acc_ = 0; void tick(); };\n";
  const std::string source =
      "void M::tick() {\n"
      "  for (int i = 0; i < 3; ++i) {\n"
      "    acc_ += 0.5;\n"
      "  }\n"
      "}\n";
  // Without the header the member's type is unknown — no finding.
  EXPECT_TRUE(lint_source("src/x/m.cpp", source).empty());
  const auto findings = lint_source("src/x/m.cpp", source, header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-accumulate");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintEngine, AllowOnPreviousLineSuppresses) {
  const std::string src =
      "// nexit-lint: allow(raw-entropy): seeding the demo only\n"
      "int f() { return rand(); }\n";
  const auto findings = lint_source("x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].allow_reason, "seeding the demo only");
}

TEST(LintEngine, AllowDoesNotLeakToOtherRulesOrFarLines) {
  const std::string src =
      "// nexit-lint: allow(float-accumulate): wrong rule for the finding\n"
      "int f() { return rand(); }\n";
  const auto findings = lint_source("x.cpp", src);
  // The rand() finding stays, and the unused annotation goes stale.
  std::set<std::string> rules;
  for (const Finding& f : findings) {
    EXPECT_FALSE(f.suppressed);
    rules.insert(f.rule);
  }
  EXPECT_EQ(rules, (std::set<std::string>{"raw-entropy", "stale-allow"}));
}

TEST(LintEngine, FindingsAreSortedAndDeterministic) {
  const std::string src =
      "#include <cstdlib>\n"
      "int a() { return rand(); }\n"
      "int b() { return rand(); }\n";
  const auto f1 = lint_source("x.cpp", src);
  const auto f2 = lint_source("x.cpp", src);
  ASSERT_EQ(f1.size(), 2u);
  EXPECT_LT(f1[0].line, f1[1].line);
  ASSERT_EQ(f2.size(), f1.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].line, f2[i].line);
    EXPECT_EQ(f1[i].rule, f2[i].rule);
    EXPECT_EQ(f1[i].message, f2[i].message);
  }
}
