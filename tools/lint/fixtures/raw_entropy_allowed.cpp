// Fixture: raw-entropy findings covered by allow() annotations.
#include <ctime>

long boot_stamp() {
  // nexit-lint: allow(raw-entropy): log header only, never reaches a digest
  return std::time(nullptr);
}
