// Fixture: annotation meta-rules. Suppressions are audited: unknown rule
// names and missing reasons are bad-allow, annotations that cover nothing
// are stale-allow. (`HIT-NEXT` anchors an expected finding to the line
// after the marker, for findings whose own line cannot hold a trailing
// comment.)
#include <vector>

// nexit-lint: allow(made-up-rule): no such rule exists  // HIT: bad-allow
int f(int x) { return x + 1; }

// HIT-NEXT: bad-allow
// nexit-lint: allow(raw-entropy):
int g(int x) { return x + 2; }

// HIT-NEXT: bad-allow
// nexit-lint: allow(stale-allow): meta rules are not suppressible
int h(int x) { return x + 3; }

// nexit-lint: allow(raw-entropy): nothing below uses entropy  // HIT: stale-allow
int k(int x) { return x + 4; }
