// Fixture: patterns the raw-entropy rule must NOT flag.
#include <cstdint>

// Member calls named like libc functions are somebody's deterministic API
// (the runtime's virtual clock, say) — only free calls are flagged.
template <typename VirtualClock>
std::uint64_t read_virtual(VirtualClock& clock_source) {
  return clock_source.time();
}

// Identifiers merely containing the banned words.
int runtime(int x) { return x; }
int use_runtime() {
  int time_ms = runtime(3);
  return time_ms;
}
