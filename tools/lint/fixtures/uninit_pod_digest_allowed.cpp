// Fixture: uninit-pod-digest finding covered by an allow() annotation.
#include <cstdint>

#include "util/digest.hpp"

struct WireHeader {
  // nexit-lint: allow(uninit-pod-digest): always memset by the framing layer before use
  std::uint32_t crc;
  std::uint32_t length = 0;
};

inline std::uint64_t header_digest(const WireHeader& h) {
  return nexit::util::fnv1a_mix(nexit::util::kFnvOffsetBasis,
                                (std::uint64_t{h.crc} << 32) | h.length);
}
