// Fixture: unordered-iteration findings covered by allow() annotations —
// the lint must report nothing unsuppressed.
#include <string>
#include <unordered_map>

std::string join_names(const std::unordered_map<int, std::string>& names) {
  std::string out;
  // nexit-lint: allow(unordered-iteration): output is re-sorted by the caller
  for (const auto& [id, name] : names) {
    out += name;
    (void)id;
  }
  return out;
}

std::size_t count_entries(const std::unordered_map<int, std::string>& names) {
  std::size_t n = 0;
  for (const auto& kv : names) n += kv.second.size();  // nexit-lint: allow(unordered-iteration): commutative integer sum
  return n;
}
