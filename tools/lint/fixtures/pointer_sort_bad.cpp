// Fixture: pointer-sort positives. Findings anchor to the line of the
// sort call itself.
#include <algorithm>
#include <vector>

struct Item {
  int id = 0;
  double score = 0.0;
};

void sort_pointers_no_comparator(std::vector<Item*>& items) {
  std::sort(items.begin(), items.end());  // HIT: pointer-sort
}

void sort_by_pointer_value(std::vector<Item*>& items) {
  std::sort(items.begin(), items.end(),  // HIT: pointer-sort
            [](const Item* a, const Item* b) { return a < b; });
}

void sort_by_address(std::vector<Item>& values) {
  std::stable_sort(values.begin(), values.end(),  // HIT: pointer-sort
                   [](const Item& a, const Item& b) { return &a < &b; });
}
