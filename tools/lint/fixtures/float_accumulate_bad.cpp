// Fixture: float-accumulate positives.
#include <cstddef>
#include <vector>

double total_weight(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;  // HIT: float-accumulate
  return total;
}

struct Meter {
  double reading_ = 0.0;

  void absorb(const std::vector<double>& samples) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      reading_ += samples[i];  // HIT: float-accumulate
    }
  }
};

float drain(float level, float rate) {
  while (level > 0.0f) {
    level += -rate;  // HIT: float-accumulate
  }
  return level;
}
