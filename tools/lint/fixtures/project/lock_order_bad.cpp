// Project fixture (lock-order, flagged): the classic ABBA shape. Two
// methods of the same class acquire the same pair of mutexes in opposite
// orders; both are flagged at their SECOND acquisition — the line where
// the inconsistent order materializes.

namespace fixture {

struct Channels {
  std::mutex tx_mu;
  std::mutex rx_mu;
  int tx = 0;
  int rx = 0;

  void forward() {
    std::lock_guard<std::mutex> a(tx_mu);
    std::lock_guard<std::mutex> b(rx_mu);  // HIT: lock-order
    ++rx;
  }

  void backward() {
    std::lock_guard<std::mutex> a(rx_mu);
    std::lock_guard<std::mutex> b(tx_mu);  // HIT: lock-order
    ++tx;
  }
};

}  // namespace fixture
