// Project fixture (unguarded-write, flagged): a ThreadPool worker lambda
// captures by reference and bumps an accumulator shared across workers
// with no lock or atomic in scope — the final value depends on the
// schedule. The sanctioned slot write right next to it stays silent.

namespace fixture {

void tally(runtime::ThreadPool& pool, const std::vector<int>& xs,
           std::vector<int>& out) {
  int total = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pool.submit([&, i] {
      total += xs[i];  // HIT: unguarded-write
      out[i] = xs[i] * 2;
    });
  }
}

}  // namespace fixture
