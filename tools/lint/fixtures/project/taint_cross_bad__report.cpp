// Project fixture (taint-flow, flagged): the sink half. The tainted value
// arrives through a call edge into elapsed_ms() defined in
// taint_cross_bad__timer.cpp and lands in an output sink. No marker here:
// taint findings anchor at the source line, where the waiver must live.

namespace fixture {

double elapsed_ms(obs::WallClock::TimePoint t0);

void report_timing(obs::WallClock::TimePoint t0) {
  const double ms = elapsed_ms(t0);
  std::printf("phase took %.1f ms\n", ms);
}

}  // namespace fixture
