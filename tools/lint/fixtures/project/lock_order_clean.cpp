// Project fixture (lock-order, near miss): both methods acquire the same
// mutex pair in the SAME order — consistent pairwise order, no deadlock
// shape, no finding. Also pins that std::scoped_lock (which acquires
// atomically) never participates in ordering.

namespace fixture {

struct Channels {
  std::mutex tx_mu;
  std::mutex rx_mu;
  int tx = 0;
  int rx = 0;

  void forward() {
    std::lock_guard<std::mutex> a(tx_mu);
    std::lock_guard<std::mutex> b(rx_mu);
    ++rx;
  }

  void flush_both() {
    std::lock_guard<std::mutex> a(tx_mu);
    std::lock_guard<std::mutex> b(rx_mu);
    tx = 0;
    rx = 0;
  }

  void swap_counts() {
    std::scoped_lock both(rx_mu, tx_mu);
    const int t = tx;
    tx = rx;
    rx = t;
  }
};

}  // namespace fixture
