// Project fixture (taint-flow, waived): same cross-TU flow as
// taint_cross_bad, but the source line carries a reasoned allow() — the
// one place a taint finding can be waived. The whole group must lint
// clean, and the annotation must not go stale while the taint pass runs.

namespace fixture {

// nexit-lint: allow(taint-flow): wall-clock duration feeds a progress line only, never a digest
double elapsed_ms(obs::WallClock::TimePoint t0) { return obs::WallClock::ms_since(t0); }

}  // namespace fixture
