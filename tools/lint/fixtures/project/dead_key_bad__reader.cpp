// Project fixture (dead-spec-key, flagged): the reader TU. It reads
// `alpha.rate` through a flags accessor and the `swept.axis` virtual key
// through axis_values — but never `ghost.knob`, which therefore shows up
// dead in dead_key_bad__registry.cpp.

namespace fixture {

void configure(const sim::Flags& flags, sim::ScenarioCtx& ctx) {
  const int rate = flags.get_int("alpha.rate", 16);
  const std::vector<std::string> axis = ctx.axis_values("swept.axis");
  use(rate, axis);
}

}  // namespace fixture
