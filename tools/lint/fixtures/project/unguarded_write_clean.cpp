// Project fixture (unguarded-write, near misses): the three sanctioned
// shapes. Per-worker slot writes (each index owned by one worker), a
// lambda that takes a lock, and a lambda that only touches its own
// locals — none of these is a finding.

namespace fixture {

void shard(runtime::ThreadPool& pool, const std::vector<int>& xs,
           std::vector<int>& out) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pool.submit([&, i] { out[i] = xs[i] * 2; });
  }
}

void guarded(runtime::ThreadPool& pool, std::mutex& mu, int& total,
             const std::vector<int>& xs) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pool.submit([&, i] {
      std::lock_guard<std::mutex> g(mu);
      total += xs[i];
    });
  }
}

void local_only(runtime::ThreadPool& pool, const std::vector<int>& xs,
                std::vector<int>& out) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pool.submit([&, i] {
      int scratch = xs[i];
      scratch *= 2;
      out[i] = scratch;
    });
  }
}

}  // namespace fixture
