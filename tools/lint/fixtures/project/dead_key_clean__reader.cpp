// Project fixture (dead-spec-key, near miss): reads every key the
// registry half declares, so the whole group lints clean.

namespace fixture {

void configure(const sim::Flags& flags, sim::ScenarioCtx& ctx) {
  const int rate = flags.get_int("alpha.rate", 16);
  const bool flag = flags.get_bool("beta.flag", false);
  const std::vector<std::string> axis = ctx.axis_values("swept.axis");
  use(rate, flag, axis);
}

}  // namespace fixture
