// Project fixture (dead-spec-key, near miss): the same miniature registry
// as dead_key_bad, but every key — scalar and sweep-only alike — has a
// reader in dead_key_clean__reader.cpp. Nothing is dead, nothing flagged.

namespace fixture {

struct KeyDoc {
  const char* key;
  const char* type;
  const char* doc;
};

std::vector<SpecKeyInfo> build_key_registry() {
  const KeyDoc docs[] = {
      {"alpha.rate", "int", "Read by the reader TU through get_int."},
      {"beta.flag", "bool", "Read by the reader TU through get_bool."},
  };

  std::vector<SpecKeyInfo> registry;
  for (const KeyDoc& d : docs) {
    SpecKeyInfo info;
    info.key = d.key;
    registry.push_back(info);
  }

  const auto sweep_only = [&registry](const char* key, const char* doc) {
    SpecKeyInfo info;
    info.key = key;
    info.sweep_only = true;
    registry.push_back(info);
  };
  sweep_only("swept.axis", "Virtual axis, read via axis_values.");

  return registry;
}

}  // namespace fixture
