// Project fixture (dead-spec-key, flagged): a miniature
// sim::spec_key_registry in the real registry's syntax — a KeyDoc
// aggregate plus one sweep_only() virtual axis. The reader TU
// (dead_key_bad__reader.cpp) reads `alpha.rate` and the swept axis but
// never `ghost.knob`, so that entry is dead and flagged at its line.

namespace fixture {

struct KeyDoc {
  const char* key;
  const char* type;
  const char* doc;
};

std::vector<SpecKeyInfo> build_key_registry() {
  const KeyDoc docs[] = {
      {"alpha.rate", "int", "Read by the reader TU through get_int."},
      // HIT-NEXT: dead-spec-key
      {"ghost.knob", "int", "No reader anywhere in the fixture set."},
  };

  std::vector<SpecKeyInfo> registry;
  for (const KeyDoc& d : docs) {
    SpecKeyInfo info;
    info.key = d.key;
    registry.push_back(info);
  }

  const auto sweep_only = [&registry](const char* key, const char* doc) {
    SpecKeyInfo info;
    info.key = key;
    info.sweep_only = true;
    registry.push_back(info);
  };
  sweep_only("swept.axis", "Virtual axis, read via axis_values.");

  return registry;
}

}  // namespace fixture
