// Project fixture for the call-graph indexer unit test. Each `DEF:`
// comment marker names the exact qualified symbol the indexer must
// produce for the function defined on the NEXT line; the test fails if
// any marked definition is missing, or if the indexer invents a
// definition this file does not mark (no-drift, both directions).
//
// Shapes covered: nested namespaces, C++17 compound namespace syntax,
// in-class method bodies, out-of-line qualified definitions (ctor-init
// lists, const/noexcept trailers, trailing return types), and an overload
// set sharing one qualified name.

namespace outer {
namespace inner {

// DEF: outer::inner::twice
int twice(int x) { return x + x; }

// DEF: outer::inner::twice
double twice(double x) { return x + x; }

struct Widget {
  // DEF: outer::inner::Widget::Widget
  explicit Widget(int n) : n_(n), scale_(1.0) {}

  // DEF: outer::inner::Widget::size
  int size() const noexcept { return n_; }

  void reset();
  auto scaled() const -> double;

  int n_ = 0;
  double scale_ = 1.0;
};

// DEF: outer::inner::Widget::reset
void Widget::reset() { n_ = 0; }

// DEF: outer::inner::Widget::scaled
auto Widget::scaled() const -> double { return n_ * scale_; }

}  // namespace inner

// DEF: outer::helper
int helper() { return inner::twice(2); }

}  // namespace outer

namespace outer::compound {

// DEF: outer::compound::entry
int entry() { return helper() + inner::twice(3); }

}  // namespace outer::compound
