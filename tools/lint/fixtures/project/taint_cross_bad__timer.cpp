// Project fixture (taint-flow, flagged): the source half of a cross-TU
// flow. A wall-clock read is born here; the value crosses the TU boundary
// through the return value of elapsed_ms() and reaches a printf sink in
// taint_cross_bad__report.cpp. The finding anchors HERE, at the source —
// the sink file carries no marker.
//
// Fixtures are lint input, not compiled code.

namespace fixture {

// HIT-NEXT: taint-flow
double elapsed_ms(obs::WallClock::TimePoint t0) { return obs::WallClock::ms_since(t0); }

}  // namespace fixture
