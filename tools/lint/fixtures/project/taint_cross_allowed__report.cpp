// Project fixture (taint-flow, waived): sink half of the waived flow.
// The waiver sits at the source in taint_cross_allowed__timer.cpp; this
// file needs (and has) no annotation at the sink.

namespace fixture {

double elapsed_ms(obs::WallClock::TimePoint t0);

void report_timing(obs::WallClock::TimePoint t0) {
  const double ms = elapsed_ms(t0);
  std::printf("phase took %.1f ms\n", ms);
}

}  // namespace fixture
