// Fixture: patterns the float-accumulate rule must NOT flag.
#include <cstdint>
#include <string>
#include <vector>

// Integer reductions are associative: order cannot change the result.
std::uint64_t total_count(const std::vector<std::uint64_t>& xs) {
  std::uint64_t total = 0;
  for (std::uint64_t x : xs) total += x;
  return total;
}

// String building is order-sensitive but not a floating-point reduction.
std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) out += p;
  return out;
}

// Float += outside any loop.
double bump(double base, double delta) {
  base += delta;
  return base;
}

// Indexed-element accumulation targets a container slot, not a scalar
// accumulator (the loads helpers own that pattern).
void spread(std::vector<double>& bins, double amount) {
  for (std::size_t i = 0; i < bins.size(); ++i) {
    bins[i] += amount;
  }
}
