// Fixture: patterns the pointer-sort rule must NOT flag.
#include <algorithm>
#include <cstdint>
#include <vector>

struct Item {
  std::uint32_t id = 0;
  double score = 0.0;
};

// Pointer parameters compared through a value key are deterministic.
void sort_pointers_by_id(std::vector<Item*>& items) {
  std::sort(items.begin(), items.end(),
            [](const Item* a, const Item* b) { return a->id < b->id; });
}

// Value containers sorted without a comparator use operator< on values.
void sort_values(std::vector<std::uint32_t>& ids) {
  std::sort(ids.begin(), ids.end());
}

// Value comparator on references.
void sort_by_score(std::vector<Item>& items) {
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.score < b.score; });
}
