// Fixture: uninitialized builtin members in a file with no digest
// machinery anywhere near it — outside the uninit-pod-digest rule's scope.
#include <cstdint>

struct ScratchCursor {
  std::uint64_t offset;
  int column;
};

inline void advance(ScratchCursor& c) {
  ++c.offset;
  ++c.column;
}
