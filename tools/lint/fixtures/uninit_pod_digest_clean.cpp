// Fixture: patterns the uninit-pod-digest rule must NOT flag.
#include <cstdint>
#include <string>
#include <vector>

#include "util/digest.hpp"

// Every builtin member initialized (assignment or brace form).
struct Sample {
  std::uint64_t id = 0;
  double value{0.0};
  bool valid = false;
};

// Non-builtin members default-construct deterministically on their own.
struct Report {
  std::string label;
  std::vector<double> series;
  std::uint32_t version = 1;
};

// Member functions and static constants are not member state.
struct Folder {
  static constexpr std::uint64_t kSeed = 17;
  [[nodiscard]] std::uint64_t fold(double x) const {
    return nexit::util::fnv1a_mix(kSeed, nexit::util::double_bits(x));
  }
};
