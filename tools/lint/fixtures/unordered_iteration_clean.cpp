// Fixture: patterns the unordered-iteration rule must NOT flag.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// Ordered map: iteration order is deterministic.
std::string join_sorted(const std::map<int, std::string>& names) {
  std::string out;
  for (const auto& [id, name] : names) {
    out += name;
    (void)id;
  }
  return out;
}

// Unordered iteration with no accumulator/output sink (pure lookup).
bool any_positive(const std::unordered_map<int, int>& scores) {
  for (const auto& kv : scores)
    if (kv.second > 0) return true;
  return false;
}

// Iterating a vector that merely lives near an unordered_map.
int sum_vector(const std::vector<int>& xs,
               const std::unordered_map<int, int>& lookup) {
  int total = 0;
  for (int x : xs) total += lookup.count(x) != 0 ? x : 0;
  return total;
}
