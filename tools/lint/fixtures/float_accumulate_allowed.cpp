// Fixture: float-accumulate finding covered by an allow() annotation.
#include <vector>

double weighted(const std::vector<double>& xs, const std::vector<double>& ws) {
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i] * ws[i];  // nexit-lint: allow(float-accumulate): index order is the canonical order here
  }
  return acc;
}
