// Fixture: uninit-pod-digest positives. The file is digest-adjacent (it
// includes util/digest.hpp and folds struct state into a digest), so every
// builtin-typed member needs a deterministic initial value.
#include <cstdint>

#include "util/digest.hpp"

struct Outcome {
  std::uint64_t rounds;  // HIT: uninit-pod-digest
  double gain_km;        // HIT: uninit-pod-digest
  int settled = 0;
};

inline std::uint64_t outcome_digest(const Outcome& o) {
  std::uint64_t h = nexit::util::kFnvOffsetBasis;
  h = nexit::util::fnv1a_mix(h, o.rounds);
  h = nexit::util::fnv1a_mix(h, nexit::util::double_bits(o.gain_km));
  return h;
}
