// Fixture: raw-entropy positives.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <vector>

int jitter() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // HIT: raw-entropy
  return std::rand();                                     // HIT: raw-entropy
}

std::mt19937 hardware_seeded() {
  std::random_device rd;  // HIT: raw-entropy
  return std::mt19937(rd());
}

long wall_stamp() {
  using WallClock = std::chrono::system_clock;  // HIT: raw-entropy
  return WallClock::now().time_since_epoch().count();
}

double naked_stopwatch() {
  // Wall-time measurement must go through obs::WallClock, never a naked
  // steady_clock (only src/obs/wall_clock.hpp itself is exempt).
  const auto t0 = std::chrono::steady_clock::now();  // HIT: raw-entropy
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)  // HIT: raw-entropy
      .count();
}

void mix(std::vector<int>& v, std::mt19937& g) {
  std::shuffle(v.begin(), v.end(), g);  // HIT: raw-entropy
}
