// Fixture: pointer-sort finding covered by an allow() annotation.
#include <algorithm>
#include <vector>

struct Arena {
  int id = 0;
};

void sort_arena_blocks(std::vector<Arena*>& blocks) {
  // nexit-lint: allow(pointer-sort): blocks come from one arena, address order is allocation order
  std::sort(blocks.begin(), blocks.end());
}
