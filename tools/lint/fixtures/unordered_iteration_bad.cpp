// Fixture: unordered-iteration positives. Lines carrying a marker comment are
// the findings the lint must report (lint_test cross-checks the marker set
// against the lint output).
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::string join_names(const std::unordered_map<int, std::string>& names) {
  std::string out;
  for (const auto& [id, name] : names) {  // HIT: unordered-iteration
    out += name;
    (void)id;
  }
  return out;
}

void collect(const std::unordered_set<int>& ids, std::vector<int>& sink) {
  for (int id : ids) sink.push_back(id);  // HIT: unordered-iteration
}
