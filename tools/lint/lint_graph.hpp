#pragma once

// Pass 1 of the cross-TU determinism analysis: a heuristic symbol indexer.
//
// Built on the same tokenizer as the line-local rules, it walks every file
// of the project, records function definitions (with namespace/class
// qualification), and resolves call sites to definitions by qualified-name
// suffix match — so `util::digest_hex(...)` in one TU links to
// `nexit::util::digest_hex` defined in another. Overloads share a
// qualified name and are resolved as a set (a call edge goes to every
// definition the spelled name could reach); for the determinism passes that
// over-approximation is the conservative direction.
//
// Like the rest of the lint this is NOT a C++ parser. Known blind spots,
// pinned by the fixture tests: calls through function pointers and
// std::function land nowhere; template instantiation is invisible (the
// template definition is indexed once); macro-generated functions are
// indexed as spelled after the preprocessor would have run only if they
// appear literally in the text.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace nexit::lint {

struct FunctionDef {
  std::string qualified;  // e.g. "nexit::sim::ScenarioCtx::axis_values"
  std::string name;       // last component, e.g. "axis_values"
  int file = -1;          // index into the file list given to the builder
  int line = 0;           // line of the definition header (the name token)
  std::size_t body_begin = 0;  // offset of the body '{' in the sanitized text
  std::size_t body_end = 0;    // offset of the matching '}'
};

struct CallEdge {
  int caller = -1;  // index into CallGraph::functions
  int callee = -1;  // index into CallGraph::functions
  int line = 0;     // line of the call site
};

struct CallGraph {
  std::vector<FunctionDef> functions;
  std::vector<CallEdge> edges;
  std::vector<std::string> sanitized;  // per input file, comments/strings blanked

  /// Indices of functions whose last name component is `name`.
  std::multimap<std::string, int> by_name;

  /// Innermost function whose body contains offset `pos` of file
  /// `file_index`, or -1.
  [[nodiscard]] int enclosing_function(int file_index, std::size_t pos) const;

  /// All definitions a spelled (possibly qualified) callee name resolves
  /// to: exact qualified match, or suffix match on `::` boundaries.
  [[nodiscard]] std::vector<int> resolve(const std::string& spelled) const;
};

CallGraph build_call_graph(const std::vector<SourceFile>& files);

/// Graphviz DOT rendering: one node per qualified name (overload sets
/// merged), deduplicated edges, both sorted so the output is byte-stable.
std::string to_dot(const CallGraph& graph,
                   const std::vector<SourceFile>& files);

}  // namespace nexit::lint
