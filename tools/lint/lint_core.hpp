#pragma once

// Rule engine of the determinism lint (tools/lint/determinism_lint).
//
// The repo's correctness story is "bit-identical outcomes": across
// --threads=N, across incremental vs. full oracle evaluation, and across
// spec-archive reloads. The tests pin that contract by example; this lint
// defends it by pattern, flagging the constructs that historically break
// bit-identity long before a digest mismatch shows up:
//
//   unordered-iteration   iterating an unordered container into an
//                         accumulator, digest, or output stream
//   raw-entropy           rand()/std::random_device/time()/system_clock/
//                         steady_clock/std::shuffle outside util::Rng /
//                         runtime::Clock / obs::WallClock
//   pointer-sort          sort comparators that order by address
//   float-accumulate      ad-hoc floating-point `+=` reductions in loops
//                         (summation order belongs to the canonical helpers)
//   uninit-pod-digest     uninitialized builtin members in structs defined
//                         in digest-adjacent files (padding/garbage bits
//                         would reach the FNV digests)
//
// On top of the line-local rules, lint_project() runs cross-TU passes over
// a whole-program call graph (lint_graph.hpp):
//
//   taint-flow            a nondeterminism source value (wall clock, raw
//                         entropy, pointer-to-int cast, thread id,
//                         unordered iteration order) flows — possibly
//                         through function return values across TUs —
//                         into a digest/metric/output sink; anchored and
//                         waivable ONLY at the source line
//   lock-order            two functions acquire the same pair of mutexes
//                         in opposite orders (ABBA deadlock shape)
//   unguarded-write       write to shared state inside a ThreadPool worker
//                         lambda with no lock/atomic in scope
//   dead-spec-key         sim::spec_key_registry entry never read by any
//                         flags/spec accessor
//
// Findings are suppressible only by an inline annotation on the same line
// or directly above the flagged statement (comment-only lines in between —
// a wrapped reason — are skipped):
//
//   // nexit-lint: allow(<rule>): <reason>
//
// The reason is mandatory, unknown rule names are themselves findings
// (bad-allow), and annotations that no longer suppress anything are too
// (stale-allow) — so suppressions cannot rot silently.
//
// The scanner is heuristic (token-level, not a C++ parser): it strips
// comments and string literals, then pattern-matches the sanitized text.
// Known blind spots are documented next to each rule in lint_core.cpp; the
// fixture suite under tools/lint/fixtures/ pins exactly what each rule does
// and does not catch.

#include <string>
#include <vector>

namespace nexit::lint {

struct Rule {
  std::string name;       // stable id, used in allow() annotations
  std::string summary;    // one line: what the rule flags
  std::string rationale;  // why that is a determinism hazard in this repo
};

/// The five line-local hazard rules, the four cross-TU pass rules, then
/// the two annotation meta-rules (bad-allow, stale-allow). Order is the
/// presentation order of --list-rules and of the generated docs table.
const std::vector<Rule>& rule_table();

bool known_rule(const std::string& name);

struct Finding {
  std::string file;          // path label as given to lint_source
  int line = 0;              // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;   // an allow() annotation covers it
  std::string allow_reason;  // the annotation's reason when suppressed
};

/// Lint one source file. `path_label` is echoed into findings and decides
/// the canonical-helper exemptions (e.g. src/util/rng.cpp may use raw
/// entropy; src/util/stats.cpp IS the canonical summation order).
/// `sibling_header` is the text of the matching .hpp when linting a .cpp,
/// so member declarations inform the float-accumulate scan.
/// Returned findings are sorted by (line, rule) and include suppressed
/// ones, flagged as such.
std::vector<Finding> lint_source(const std::string& path_label,
                                 const std::string& content,
                                 const std::string& sibling_header = "");

/// One file of a project-level lint run.
struct SourceFile {
  std::string path;            // repo-relative label, echoed into findings
  std::string content;         // raw text
  std::string sibling_header;  // matching .hpp text when path is a .cpp
};

/// Which cross-TU passes lint_project runs on top of the line-local
/// rules. An allow() for a pass rule is only audited for staleness when
/// that pass actually ran — a tree scanned without --taint must not call
/// the taint waivers stale.
struct ProjectOptions {
  bool taint = false;
  bool locks = false;
  bool dead_keys = false;
};

/// Lint a whole project: line-local rules per file, then the enabled
/// cross-TU passes over the shared call graph, then one unified
/// allow()/stale-allow application. Findings are sorted by
/// (file, line, rule).
std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const ProjectOptions& opts);

/// Comments and the bodies of string/char literals blanked with spaces;
/// newlines and overall layout preserved (so byte offsets map to the same
/// lines). Exposed for the fixture tests.
std::string strip_comments_and_strings(const std::string& text);

}  // namespace nexit::lint
