#!/usr/bin/env bash
# Emit the benchmark baseline (BENCH_<n>.json): one JSON file aggregating
# the perf-relevant benches at fixed parameters, so the trajectory of
# wall-clock and work counters is recorded PR over PR (ROADMAP asks for a
# BENCH_*.json per growth step). Digests are included so a baseline also
# witnesses the determinism contract at the recorded parameters; wall-clock
# numbers are machine-dependent and are NOT comparable across hosts.
#
#   tools/bench_baseline.sh <build-dir> <out.json>
#
# CI regenerates the file on every run and archives it as an artifact; the
# checked-in copy is the reference point from the PR that introduced it.
set -euo pipefail

build=${1:?usage: bench_baseline.sh <build-dir> <out.json>}
out=${2:?usage: bench_baseline.sh <build-dir> <out.json>}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Fixed parameters: big enough that the counters are meaningful, small
# enough for a CI smoke lane. Changing them invalidates comparisons, so
# bump the baseline filename's PR number when you do.
"$build/micro_incremental" --isps=16 --pairs=6 --repeat=3 --moves=2000 \
  --json="$tmp/micro_incremental.json" > /dev/null
"$build/nexit_run" --scenario=fig7 --isps=16 --pairs=6 --threads=2 \
  --json="$tmp/fig7.json" > /dev/null
"$build/runtime_throughput" --sessions=128 --threads=2 \
  --json="$tmp/runtime_throughput.json" > /dev/null
"$build/snapshot_throughput" --sessions=96 --threads=2 \
  --json="$tmp/snapshot_throughput.json" > /dev/null
# dist_throughput spawns nexit_workerd from its own directory, so it must
# run from the build tree.
(cd "$build" && ./dist_throughput --points=4 --sessions=200 \
  --json="$tmp/dist_throughput.json" > /dev/null)

python3 - "$tmp" "$out" <<'EOF'
import json, sys

tmp, out = sys.argv[1], sys.argv[2]
benches = {}
for name in ("micro_incremental", "fig7", "runtime_throughput",
             "snapshot_throughput", "dist_throughput"):
    with open(f"{tmp}/{name}.json") as f:
        benches[name] = json.load(f)

baseline = {
    "schema": "nexit-bench-baseline-v1",
    "generated_by": "tools/bench_baseline.sh",
    "benches": benches,
}
with open(out, "w") as f:
    json.dump(baseline, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
mi = benches["micro_incremental"]["metrics"]
f7 = benches["fig7"]["metrics"]
rt = benches["runtime_throughput"]["metrics"]
print(f"  micro_incremental: incremental {mi['wall_ms_incremental']:.1f}ms"
      f" vs full {mi['wall_ms_full']:.1f}ms (speedup {mi['speedup']:.2f}x,"
      f" digest_match={mi['digest_match']})")
print(f"  fig7: {f7['wall_ms']:.1f}ms digest={f7['digest']}"
      f" row_fraction={f7['eval_row_fraction']:.4f}")
print(f"  runtime_throughput: {rt['sessions_per_second']:.1f} sessions/s,"
      f" {rt['messages_per_second']:.0f} msgs/s")
sn = benches["snapshot_throughput"]["metrics"]
print(f"  snapshot_throughput: journaling +{sn['journal_overhead_pct']:.1f}%,"
      f" {sn['restores_per_second']:.0f} restores/s,"
      f" digest_match={sn['digest_match']}")
dt = benches["dist_throughput"]["metrics"]
print(f"  dist_throughput: {dt['points_per_second_lo']:.2f} ->"
      f" {dt['points_per_second_hi']:.2f} points/s,"
      f" {dt['sessions_per_second_lo']:.0f} ->"
      f" {dt['sessions_per_second_hi']:.0f} sessions/s,"
      f" sweep_digest={dt['sweep_digest']}")
EOF
