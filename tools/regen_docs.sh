#!/usr/bin/env bash
# Regenerate every doc that is derived from the code:
#   - docs/SPEC_REFERENCE.md   from the spec-key metadata registry
#   - README.md scenario table from the scenario registry
#   - docs/ARCHITECTURE.md lint-rule and lint-pass tables from
#     determinism_lint
#
#   tools/regen_docs.sh [build-dir]     (default: build)
#
# CI runs this and fails on `git diff`, so none can drift from the
# registries they document.
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"

"$build/nexit_run" --help-spec=markdown > docs/SPEC_REFERENCE.md
"$build/nexit_run" --list-scenarios=tsv | python3 tools/update_readme_catalog.py README.md

# Splice the lint's self-reported rule and pass tables between the
# markers in docs/ARCHITECTURE.md § Correctness tooling.
LINT_RULES="$("$build/tools/lint/determinism_lint" --list-rules=markdown)" \
LINT_PASSES="$("$build/tools/lint/determinism_lint" --list-passes=markdown)" \
python3 - <<'EOF'
import os

path = "docs/ARCHITECTURE.md"
text = open(path).read()
for env, marker in (("LINT_RULES", "lint-rules"), ("LINT_PASSES", "lint-passes")):
    table = os.environ[env].rstrip("\n")
    begin, end = f"<!-- {marker}:begin -->", f"<!-- {marker}:end -->"
    head, rest = text.split(begin, 1)
    _, tail = rest.split(end, 1)
    text = f"{head}{begin}\n{table}\n{end}{tail}"
open(path, "w").write(text)
EOF
echo "regenerated docs/SPEC_REFERENCE.md, the README scenario catalog," \
     "and the ARCHITECTURE.md lint-rule and lint-pass tables"
