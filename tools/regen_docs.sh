#!/usr/bin/env bash
# Regenerate every doc that is derived from the code:
#   - docs/SPEC_REFERENCE.md   from the spec-key metadata registry
#   - README.md scenario table from the scenario registry
#   - docs/ARCHITECTURE.md lint-rule table from determinism_lint
#
#   tools/regen_docs.sh [build-dir]     (default: build)
#
# CI runs this and fails on `git diff`, so none can drift from the
# registries they document.
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"

"$build/nexit_run" --help-spec=markdown > docs/SPEC_REFERENCE.md
"$build/nexit_run" --list-scenarios=tsv | python3 tools/update_readme_catalog.py README.md

# Splice the lint's self-reported rule table between the markers in
# docs/ARCHITECTURE.md § Correctness tooling.
LINT_RULES="$("$build/tools/lint/determinism_lint" --list-rules=markdown)" \
python3 - <<'EOF'
import os

path = "docs/ARCHITECTURE.md"
table = os.environ["LINT_RULES"].rstrip("\n")
begin, end = "<!-- lint-rules:begin -->", "<!-- lint-rules:end -->"
text = open(path).read()
head, rest = text.split(begin, 1)
_, tail = rest.split(end, 1)
open(path, "w").write(f"{head}{begin}\n{table}\n{end}{tail}")
EOF
echo "regenerated docs/SPEC_REFERENCE.md, the README scenario catalog," \
     "and the ARCHITECTURE.md lint-rule table"
