#!/usr/bin/env bash
# Regenerate every doc that is derived from the code:
#   - docs/SPEC_REFERENCE.md   from the spec-key metadata registry
#   - README.md scenario table from the scenario registry
#
#   tools/regen_docs.sh [build-dir]     (default: build)
#
# CI runs this and fails on `git diff`, so neither can drift from the
# registries they document.
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"

"$build/nexit_run" --help-spec=markdown > docs/SPEC_REFERENCE.md
"$build/nexit_run" --list-scenarios=tsv | python3 tools/update_readme_catalog.py README.md
echo "regenerated docs/SPEC_REFERENCE.md and the README scenario catalog"
