#!/usr/bin/env python3
"""Regenerate README.md's scenario catalog table from the registry.

Reads `nexit_run --list-scenarios=tsv` on stdin and rewrites the block
between the `<!-- scenario-catalog:begin -->` / `:end` markers in the README
given as argv[1]. CI runs this (via tools/regen_docs.sh) and fails on any
diff, so the catalog can never drift from the registry.
"""

import sys


def main() -> int:
    readme_path = sys.argv[1] if len(sys.argv) > 1 else "README.md"
    begin, end = "<!-- scenario-catalog:begin -->", "<!-- scenario-catalog:end -->"

    rows = ["| scenario | legacy binary | reproduces |", "|---|---|---|"]
    for line in sys.stdin:
        name, legacy, desc = line.rstrip("\n").split("\t")
        legacy_cell = "—" if legacy == "-" else f"`{legacy}`"
        rows.append(f"| `{name}` | {legacy_cell} | {desc} |")
    table = "\n".join(rows)

    text = open(readme_path, encoding="utf-8").read()
    head, _, rest = text.partition(begin)
    if not rest:
        sys.exit(f"{readme_path}: missing {begin} marker")
    _, _, tail = rest.partition(end)
    if not tail:
        sys.exit(f"{readme_path}: missing {end} marker")
    open(readme_path, "w", encoding="utf-8").write(
        f"{head}{begin}\n{table}\n{end}{tail}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
